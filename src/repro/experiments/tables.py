"""Tables I–VII of the paper, regenerated on the synthetic suites.

Every ``run_table*`` function returns a :class:`TableResult` holding
both the formatted text (printed by the benchmark harness) and the raw
per-instance records (consumed by tests and EXPERIMENTS.md).  Matrix
names match the paper so rows line up side by side.

All quantitative tables drive one :class:`repro.engine.PartitionEngine`
per matrix, so the schemes compared side by side share their vector
partitions, block structures and batched block-DM analytics instead of
recomputing them per method — e.g. Table II's s2D column reuses the 1D
column's hypergraph run and one block-analytics pass per (matrix, K).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine import PartitionEngine
from repro.experiments.config import ExperimentConfig
from repro.generators.suite import SuiteMatrix, table1_suite, table4_suite
from repro.metrics import format_li, format_table, geomean
from repro.simulate import PartitionQuality

__all__ = [
    "TableResult",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_table5",
    "run_table6",
    "run_table7",
]


@dataclass
class TableResult:
    """A regenerated table: formatted text plus raw records."""

    title: str
    headers: list[str]
    rows: list[list[str]]
    records: list[dict] = field(default_factory=list)

    @property
    def text(self) -> str:
        return format_table(self.headers, self.rows, title=self.title)


def _properties_table(suite: list[SuiteMatrix], title: str) -> TableResult:
    headers = ["name", "n", "nnz", "davg", "dmax", "application"]
    rows, records = [], []
    for sm in suite:
        p = sm.properties()
        rows.append(
            [p.name, p.nrows, p.nnz, f"{p.davg:.1f}", p.dmax, sm.application]
        )
        records.append(
            {
                "name": p.name,
                "n": p.nrows,
                "nnz": p.nnz,
                "davg": p.davg,
                "dmax": p.dmax,
                "skew": p.row_skew,
            }
        )
    return TableResult(title=title, headers=headers, rows=rows, records=records)


def run_table1(cfg: ExperimentConfig | None = None) -> TableResult:
    """Table I: properties of the general test suite."""
    cfg = cfg or ExperimentConfig()
    return _properties_table(
        table1_suite(cfg.scale),
        f"Table I analog (scale={cfg.scale}): general matrices",
    )


def run_table4(cfg: ExperimentConfig | None = None) -> TableResult:
    """Table IV: properties of the dense-row suite."""
    cfg = cfg or ExperimentConfig()
    return _properties_table(
        table4_suite(cfg.scale),
        f"Table IV analog (scale={cfg.scale}): matrices with dense rows",
    )


# ----------------------------------------------------------------------
# Table II: 1D vs 2D vs s2D
# ----------------------------------------------------------------------


def _engine(a, cfg: ExperimentConfig) -> PartitionEngine:
    """One engine per matrix: every scheme below shares its caches."""
    return PartitionEngine(a, seed=cfg.seed, machine=cfg.machine)


def run_table2(
    cfg: ExperimentConfig | None = None, ks: tuple[int, ...] | None = None
) -> TableResult:
    """Table II: 1D rowwise vs 2D fine-grain vs s2D (Algorithm 1)."""
    cfg = cfg or ExperimentConfig()
    ks = ks or cfg.general_ks
    headers = [
        "name", "K",
        "1D:LI", "1D:lat(av/mx)", "lam1D", "1D:Sp",
        "2D:LI", "2D:lat(av/mx)", "2D:lam/1D", "2D:Sp",
        "s2D:LI", "s2D:lam/1D", "s2D:Sp",
    ]
    rows, records = [], []
    per_k: dict[int, list[dict]] = {k: [] for k in ks}
    for idx, sm in enumerate(table1_suite(cfg.scale)):
        eng = _engine(sm.matrix(), cfg)
        for k in ks:
            q1 = eng.plan("1d-rowwise", k, config=cfg.partitioner(idx * 10)).quality()
            q2 = eng.plan("finegrain", k, config=cfg.partitioner(idx * 10 + 1)).quality()
            # Same config key as the 1D plan → s2D refines 1D's cached
            # vector partition, as in the paper's setup.
            qs = eng.plan("s2d-heuristic", k, config=cfg.partitioner(idx * 10)).quality()
            rec = {
                "name": sm.name, "K": k,
                "1D": q1, "2D": q2, "s2D": qs,
                "lam_ratio_2d": q2.total_volume / q1.total_volume,
                "lam_ratio_s2d": qs.total_volume / q1.total_volume,
            }
            records.append(rec)
            per_k[k].append(rec)
            rows.append(
                [
                    sm.name, k,
                    q1.format_li(), f"{q1.avg_msgs:.0f}/{q1.max_msgs}",
                    f"{q1.total_volume:.2e}", f"{q1.speedup:.1f}",
                    q2.format_li(), f"{q2.avg_msgs:.0f}/{q2.max_msgs}",
                    f"{rec['lam_ratio_2d']:.2f}", f"{q2.speedup:.1f}",
                    qs.format_li(), f"{rec['lam_ratio_s2d']:.2f}",
                    f"{qs.speedup:.1f}",
                ]
            )
    for k in ks:
        rs = per_k[k]
        if not rs:
            continue
        rows.append(
            [
                "geomean", k,
                format_li(geomean(r["1D"].load_imbalance for r in rs)),
                f"{geomean(r['1D'].avg_msgs for r in rs):.0f}/"
                f"{geomean(r['1D'].max_msgs for r in rs):.0f}",
                f"{geomean(r['1D'].total_volume for r in rs):.2e}",
                f"{geomean(r['1D'].speedup for r in rs):.1f}",
                format_li(geomean(r["2D"].load_imbalance for r in rs)),
                f"{geomean(r['2D'].avg_msgs for r in rs):.0f}/"
                f"{geomean(r['2D'].max_msgs for r in rs):.0f}",
                f"{geomean(r['lam_ratio_2d'] for r in rs):.2f}",
                f"{geomean(r['2D'].speedup for r in rs):.1f}",
                format_li(geomean(r["s2D"].load_imbalance for r in rs)),
                f"{geomean(r['lam_ratio_s2d'] for r in rs):.2f}",
                f"{geomean(r['s2D'].speedup for r in rs):.1f}",
            ]
        )
    return TableResult(
        title=f"Table II analog (scale={cfg.scale}): 1D vs 2D vs s2D",
        headers=headers,
        rows=rows,
        records=records,
    )


# ----------------------------------------------------------------------
# Table III: checkerboard vs best of (1D, 2D, s2D)
# ----------------------------------------------------------------------


def run_table3(
    cfg: ExperimentConfig | None = None, k: int | None = None
) -> TableResult:
    """Table III: hypergraph Cartesian 2D-b vs the best unbounded scheme."""
    cfg = cfg or ExperimentConfig()
    k = k or cfg.general_ks[-1]
    headers = [
        "name", "best(1D,2D,s2D):Sp", "scheme",
        "2Db:LI", "2Db:lat(av/mx)", "2Db:lam/1D", "2Db:Sp",
    ]
    rows, records = [], []
    for idx, sm in enumerate(table1_suite(cfg.scale)):
        eng = _engine(sm.matrix(), cfg)
        q1 = eng.plan("1d-rowwise", k, config=cfg.partitioner(idx * 10)).quality()
        q2 = eng.plan("finegrain", k, config=cfg.partitioner(idx * 10 + 1)).quality()
        qs = eng.plan("s2d-heuristic", k, config=cfg.partitioner(idx * 10)).quality()
        qb = eng.plan("checkerboard", k, config=cfg.partitioner(idx * 10 + 2)).quality()
        best_name, best_q = max(
            (("1D", q1), ("2D", q2), ("s2D", qs)), key=lambda t: t[1].speedup
        )
        rec = {
            "name": sm.name, "K": k, "best": best_name, "best_q": best_q,
            "2D-b": qb, "lam_ratio": qb.total_volume / q1.total_volume,
        }
        records.append(rec)
        rows.append(
            [
                sm.name, f"{best_q.speedup:.1f}", best_name,
                qb.format_li(), f"{qb.avg_msgs:.0f}/{qb.max_msgs}",
                f"{rec['lam_ratio']:.2f}", f"{qb.speedup:.1f}",
            ]
        )
    rows.append(
        [
            "geomean",
            f"{geomean(r['best_q'].speedup for r in records):.1f}", "-",
            format_li(geomean(r["2D-b"].load_imbalance for r in records)),
            f"{geomean(r['2D-b'].avg_msgs for r in records):.0f}/"
            f"{geomean(r['2D-b'].max_msgs for r in records):.0f}",
            f"{geomean(r['lam_ratio'] for r in records):.2f}",
            f"{geomean(r['2D-b'].speedup for r in records):.1f}",
        ]
    )
    return TableResult(
        title=f"Table III analog (scale={cfg.scale}, K={k}): Cartesian 2D-b",
        headers=headers,
        rows=rows,
        records=records,
    )


# ----------------------------------------------------------------------
# Table V: 1D vs s2D vs s2D-b on the dense-row suite
# ----------------------------------------------------------------------


def run_table5(
    cfg: ExperimentConfig | None = None, ks: tuple[int, ...] | None = None
) -> TableResult:
    """Table V: the dense-row suite under 1D, s2D and s2D-b."""
    cfg = cfg or ExperimentConfig()
    ks = ks or cfg.dense_ks
    headers = [
        "name", "K",
        "1D:LI", "1D:lat(av/mx)", "lam1D",
        "s2D:LI", "s2D:lam/1D",
        "s2Db:lat(av/mx)", "s2Db:lam/1D",
    ]
    rows, records = [], []
    per_k: dict[int, list[dict]] = {k: [] for k in ks}
    for idx, sm in enumerate(table4_suite(cfg.scale)):
        eng = _engine(sm.matrix(), cfg)
        for k in ks:
            q1 = eng.plan("1d-rowwise", k, config=cfg.partitioner(idx * 10)).quality()
            qs = eng.plan("s2d-heuristic", k, config=cfg.partitioner(idx * 10)).quality()
            # s2D-b shares the cached s2D plan: same nonzero partition,
            # mesh-routed schedule.
            qb = eng.plan("s2d-bounded", k, config=cfg.partitioner(idx * 10)).quality()
            rec = {
                "name": sm.name, "K": k, "1D": q1, "s2D": qs, "s2D-b": qb,
                "lam_s2d": qs.total_volume / q1.total_volume,
                "lam_s2db": qb.total_volume / q1.total_volume,
            }
            records.append(rec)
            per_k[k].append(rec)
            rows.append(
                [
                    sm.name, k,
                    q1.format_li(), f"{q1.avg_msgs:.0f}/{q1.max_msgs}",
                    f"{q1.total_volume:.2e}",
                    qs.format_li(), f"{rec['lam_s2d']:.2f}",
                    f"{qb.avg_msgs:.0f}/{qb.max_msgs}",
                    f"{rec['lam_s2db']:.2f}",
                ]
            )
    for k in ks:
        rs = per_k[k]
        rows.append(
            [
                "geomean", k,
                format_li(geomean(r["1D"].load_imbalance for r in rs)),
                f"{geomean(r['1D'].avg_msgs for r in rs):.0f}/"
                f"{geomean(r['1D'].max_msgs for r in rs):.0f}",
                f"{geomean(r['1D'].total_volume for r in rs):.2e}",
                format_li(geomean(r["s2D"].load_imbalance for r in rs)),
                f"{geomean(r['lam_s2d'] for r in rs):.2f}",
                f"{geomean(r['s2D-b'].avg_msgs for r in rs):.0f}/"
                f"{geomean(r['s2D-b'].max_msgs for r in rs):.0f}",
                f"{geomean(r['lam_s2db'] for r in rs):.2f}",
            ]
        )
    return TableResult(
        title=f"Table V analog (scale={cfg.scale}): 1D vs s2D vs s2D-b",
        headers=headers,
        rows=rows,
        records=records,
    )


# ----------------------------------------------------------------------
# Table VI: s2D-b vs 2D-b vs 1D-b
# ----------------------------------------------------------------------


def run_table6(
    cfg: ExperimentConfig | None = None, ks: tuple[int, ...] | None = None
) -> TableResult:
    """Table VI: the latency-bounded schemes compared."""
    cfg = cfg or ExperimentConfig()
    ks = ks or cfg.dense_ks
    headers = [
        "name", "K",
        "2Db:LI", "lam2Db",
        "1Db:LI", "1Db:lam/2Db",
        "s2Db:LI", "s2Db:lam/2Db",
    ]
    rows, records = [], []
    per_k: dict[int, list[dict]] = {k: [] for k in ks}
    for idx, sm in enumerate(table4_suite(cfg.scale)):
        eng = _engine(sm.matrix(), cfg)
        for k in ks:
            qcb = eng.plan("checkerboard", k, config=cfg.partitioner(idx * 10 + 2)).quality()
            # 1D-b and s2D-b both route the cached 1D vector partition.
            q1b = eng.plan("1d-boman", k, config=cfg.partitioner(idx * 10)).quality()
            qsb = eng.plan("s2d-bounded", k, config=cfg.partitioner(idx * 10)).quality()
            rec = {
                "name": sm.name, "K": k,
                "2D-b": qcb, "1D-b": q1b, "s2D-b": qsb,
                "lam_1db": q1b.total_volume / qcb.total_volume,
                "lam_s2db": qsb.total_volume / qcb.total_volume,
            }
            records.append(rec)
            per_k[k].append(rec)
            rows.append(
                [
                    sm.name, k,
                    qcb.format_li(), f"{qcb.total_volume:.2e}",
                    q1b.format_li(), f"{rec['lam_1db']:.2f}",
                    qsb.format_li(), f"{rec['lam_s2db']:.2f}",
                ]
            )
    for k in ks:
        rs = per_k[k]
        rows.append(
            [
                "geomean", k,
                format_li(geomean(r["2D-b"].load_imbalance for r in rs)),
                f"{geomean(r['2D-b'].total_volume for r in rs):.2e}",
                format_li(geomean(r["1D-b"].load_imbalance for r in rs)),
                f"{geomean(r['lam_1db'] for r in rs):.2f}",
                format_li(geomean(r["s2D-b"].load_imbalance for r in rs)),
                f"{geomean(r['lam_s2db'] for r in rs):.2f}",
            ]
        )
    return TableResult(
        title=f"Table VI analog (scale={cfg.scale}): bounded-latency schemes",
        headers=headers,
        rows=rows,
        records=records,
    )


# ----------------------------------------------------------------------
# Table VII: s2D vs s2D-mg
# ----------------------------------------------------------------------


def run_table7(
    cfg: ExperimentConfig | None = None, ks: tuple[int, ...] | None = None
) -> TableResult:
    """Table VII: the Algorithm-1 s2D vs the medium-grain s2D."""
    cfg = cfg or ExperimentConfig()
    ks = ks or cfg.dense_ks
    headers = [
        "name", "K",
        "mg:LI", "mg:lat", "lam_mg",
        "s2D:LI", "s2D:lat", "s2D:lam/mg",
    ]
    rows, records = [], []
    per_k: dict[int, list[dict]] = {k: [] for k in ks}
    for idx, sm in enumerate(table4_suite(cfg.scale)):
        eng = _engine(sm.matrix(), cfg)
        for k in ks:
            qmg = eng.plan("medium-grain", k, config=cfg.partitioner(idx * 10 + 3)).quality()
            qs = eng.plan("s2d-heuristic", k, config=cfg.partitioner(idx * 10)).quality()
            rec = {
                "name": sm.name, "K": k, "mg": qmg, "s2D": qs,
                "lam_ratio": qs.total_volume / max(qmg.total_volume, 1),
            }
            records.append(rec)
            per_k[k].append(rec)
            rows.append(
                [
                    sm.name, k,
                    qmg.format_li(), f"{qmg.avg_msgs:.0f}",
                    f"{qmg.total_volume:.2e}",
                    qs.format_li(), f"{qs.avg_msgs:.0f}",
                    f"{rec['lam_ratio']:.2f}",
                ]
            )
    for k in ks:
        rs = per_k[k]
        rows.append(
            [
                "geomean", k,
                format_li(geomean(r["mg"].load_imbalance for r in rs)),
                f"{geomean(r['mg'].avg_msgs for r in rs):.0f}",
                f"{geomean(r['mg'].total_volume for r in rs):.2e}",
                format_li(geomean(r["s2D"].load_imbalance for r in rs)),
                f"{geomean(r['s2D'].avg_msgs for r in rs):.0f}",
                f"{geomean(r['lam_ratio'] for r in rs):.2f}",
            ]
        )
    return TableResult(
        title=f"Table VII analog (scale={cfg.scale}): s2D vs s2D-mg",
        headers=headers,
        rows=rows,
        records=records,
    )
