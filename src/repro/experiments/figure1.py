"""Figure 1: the worked 10×13 s2D example.

The paper's figure shows a 10×13 matrix under a 3-way s2D partition.
The full pattern is not machine-readable from the PDF, so this module
*reconstructs* a matrix that satisfies every statement the text makes
about the figure, and the test suite pins those statements:

- rows {1..4}, {5..7}, {8..10} and columns {1..4}, {5..7}, {8..13}
  belong to P1, P2, P3 (1-based, as in the paper);
- ``a_{2,5}`` and ``a_{3,5}`` are assigned to their *row* part P1, so
  P1 requires ``x_5`` from P2;
- ``a_{2,6}`` and ``a_{2,7}`` are assigned to their *column* part P2,
  which precomputes ``ȳ_2 = a_{2,6} x_6 + a_{2,7} x_7``;
- hence P2 sends the fused packet ``[x_5, ȳ_2]`` to P1 — one message,
  two words;
- P1 sends the partial ``ȳ_5`` to P2 due to ``a_{5,1}`` and
  ``a_{5,3}``;
- ``x_13`` is required only by P2;
- ``λ_{3→2} = 3``, from ``n̂(A^{(2)}_{2,3}) = 2`` and
  ``m̂(A^{(3)}_{2,3}) = 1``.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.partition.types import SpMVPartition, VectorPartition
from repro.sparse.coo import canonical_coo
from repro.sparse.permute import spy_string

__all__ = ["figure1_matrix", "figure1_partition", "figure1_report"]

# 0-based (row, col, owner) triplets reconstructing the figure.
# Vector partition (0-based): rows 0-3 -> P0, 4-6 -> P1, 7-9 -> P2;
# columns 0-3 -> P0, 4-6 -> P1, 7-12 -> P2.
_ENTRIES = [
    # --- diagonal blocks (owners trivially their own part) ---
    (0, 0, 0), (0, 2, 0), (1, 1, 0), (2, 3, 0), (3, 0, 0), (3, 3, 0),
    (4, 5, 1), (5, 4, 1), (5, 6, 1), (6, 5, 1),
    (7, 7, 2), (7, 9, 2), (8, 8, 2), (9, 10, 2), (9, 11, 2),
    # --- block (P0 rows, P1 cols): a_{2,5}, a_{3,5} -> row part P0 ---
    (1, 4, 0), (2, 4, 0),
    # --- block (P0 rows, P1 cols): a_{2,6}, a_{2,7} -> column part P1 ---
    (1, 5, 1), (1, 6, 1),
    # --- block (P1 rows, P0 cols): a_{5,1}, a_{5,3} -> column part P0 ---
    (4, 0, 0), (4, 2, 0),
    # --- block (P1 rows, P2 cols) realising lambda_{3->2} = 3 ---
    # n̂(A^{(1)}_{1,2}) = 2: row-side nonzeros spanning columns {8, 12};
    # column 12 is x_13, touched only by P1 rows ("P2 is the only
    # processor that requires x_13" in the paper's 1-based narration).
    (5, 8, 1), (6, 8, 1), (5, 12, 1),
    # m̂(A^{(2)}_{1,2}) = 1: column-side nonzeros in the single row 4
    (4, 7, 2), (4, 9, 2),
    # --- a little P2-row / P0-col traffic so every pair communicates ---
    (8, 1, 2), (9, 3, 2),
]


def figure1_matrix() -> sp.coo_matrix:
    """The reconstructed 10×13 pattern with unit values."""
    rows = np.array([e[0] for e in _ENTRIES])
    cols = np.array([e[1] for e in _ENTRIES])
    vals = np.ones(len(_ENTRIES), dtype=np.float64)
    return canonical_coo(sp.coo_matrix((vals, (rows, cols)), shape=(10, 13)))


def figure1_partition() -> SpMVPartition:
    """The 3-way s2D partition of the figure (hand-assigned owners)."""
    m = figure1_matrix()
    y_part = np.array([0] * 4 + [1] * 3 + [2] * 3, dtype=np.int64)
    x_part = np.array([0] * 4 + [1] * 3 + [2] * 6, dtype=np.int64)
    lookup = {(r, c): p for r, c, p in _ENTRIES}
    nnz_part = np.array(
        [lookup[(int(i), int(j))] for i, j in zip(m.row, m.col)], dtype=np.int64
    )
    p = SpMVPartition(
        matrix=m,
        nnz_part=nnz_part,
        vectors=VectorPartition(x_part=x_part, y_part=y_part, nparts=3),
        kind="s2D",
        meta={"source": "figure 1 reconstruction"},
    )
    p.validate_s2d()
    return p


def _figure1_cell(_) -> tuple:
    """Worker body of the Figure 1 harness (module-level: picklable)."""
    from repro.core.volume import pairwise_volumes  # local import: avoid cycle

    p = figure1_partition()
    return p, pairwise_volumes(p)


def figure1_report(*, jobs: int = 1) -> str:
    """ASCII rendition of Figure 1 plus the worked message table.

    Routed through the sweep orchestrator's task layer
    (:func:`repro.sweep.map_tasks`) like every other experiment
    artifact — a single-cell grid, so ``jobs`` only selects where the
    cell runs.
    """
    from repro.sweep import map_tasks

    (p, lam), = map_tasks(_figure1_cell, [None], jobs=jobs)
    lines = [
        "Figure 1 (reconstruction): 10x13 matrix, 3-way s2D partition",
        "(digits are 1-based owning processors; rows/cols grouped by part)",
        "",
        spy_string(p.matrix, p.nnz_part, p.vectors.x_part, p.vectors.y_part),
        "",
        "Fused messages lambda_{k->l} (eq. 3):",
    ]
    for (src, dst), words in sorted(lam.items()):
        lines.append(f"  P{src + 1} -> P{dst + 1}: {words} words")
    lines.append("")
    lines.append(
        "Worked example of the text: P2 sends [x_5, y~_2] to P1 "
        f"(lambda_{{2->1}} = {lam.get((1, 0), 0)}); "
        f"lambda_{{3->2}} = {lam.get((2, 1), 0)}."
    )
    return "\n".join(lines)
