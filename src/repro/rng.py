"""Deterministic random-number handling.

Every stochastic component of the library (hypergraph coarsening tie
breaks, initial partition growing, workload generators) accepts a
``seed`` argument that is normalized through :func:`as_generator`, so a
whole experiment is reproducible from a single integer.
"""

from __future__ import annotations

import numpy as np

__all__ = ["as_generator", "spawn", "DEFAULT_SEED"]

DEFAULT_SEED = 20150525  # date of the PCO 2015 workshop


def as_generator(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Normalize ``seed`` into a :class:`numpy.random.Generator`.

    ``None`` maps to the library default seed (not to OS entropy): this
    library is a reproduction harness, so "unseeded" still means
    deterministic.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from ``rng``.

    Used by recursive bisection so that the partition of one subproblem
    does not perturb the random stream of its sibling.
    """
    seeds = rng.integers(0, 2**63 - 1, size=n)
    return [np.random.default_rng(int(s)) for s in seeds]
