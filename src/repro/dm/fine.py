"""Fine Dulmage–Mendelsohn decomposition (Pothen & Fan, 1990).

The coarse decomposition splits a pattern into horizontal / square /
vertical blocks; the *fine* decomposition further orders the square
block into its block-triangular form: the strongly connected components
of the digraph induced by a perfect matching of ``S``, in topological
order.  The paper cites this form (ref [15]) as the foundation of the
DM machinery; it completes the substrate and is independently useful
for block-triangular solves.

Construction: with a perfect matching on ``S``, orient an edge
``c → c'`` between columns whenever the row matched to ``c`` has a
nonzero in column ``c'``.  The SCCs of that digraph are the diagonal
blocks; a reverse-topological ordering makes the permuted matrix block
upper triangular.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dm.decomposition import SQUARE, CoarseDM, coarse_dm
from repro.dm.matching import bipartite_adjacency, hopcroft_karp
from repro.kernels import concat_ranges

__all__ = ["FineDM", "fine_dm"]


@dataclass(frozen=True)
class FineDM:
    """Fine DM decomposition of a sparse pattern.

    ``blocks`` lists the square part's strongly connected diagonal
    blocks in topological order: all nonzeros of the permuted square
    part lie on or above the block diagonal.  Each entry is a pair of
    global ``(row_ids, col_ids)`` arrays of equal length.
    """

    coarse: CoarseDM
    blocks: list[tuple[np.ndarray, np.ndarray]]

    @property
    def nblocks(self) -> int:
        return len(self.blocks)

    def square_row_order(self) -> np.ndarray:
        """Global row ids of the square part, block-triangular order."""
        if not self.blocks:
            return np.empty(0, dtype=np.int64)
        return np.concatenate([r for r, _ in self.blocks])

    def square_col_order(self) -> np.ndarray:
        """Global column ids of the square part, block-triangular order."""
        if not self.blocks:
            return np.empty(0, dtype=np.int64)
        return np.concatenate([c for _, c in self.blocks])


def _tarjan_scc(
    nv: int, indptr: np.ndarray, indices: np.ndarray
) -> list[list[int]]:
    """Iterative Tarjan SCC over a CSR digraph ``(indptr, indices)``;
    components returned in reverse topological order of the condensation
    (standard Tarjan emission order)."""
    index = np.full(nv, -1, dtype=np.int64)
    low = np.zeros(nv, dtype=np.int64)
    on_stack = np.zeros(nv, dtype=bool)
    stack: list[int] = []
    sccs: list[list[int]] = []
    counter = 0
    ptr = indptr.tolist()
    succ = indices.tolist()

    for root in range(nv):
        if index[root] != -1:
            continue
        work = [(root, 0)]
        while work:
            v, pi = work.pop()
            if pi == 0:
                index[v] = low[v] = counter
                counter += 1
                stack.append(v)
                on_stack[v] = True
            recurse = False
            start, end = ptr[v], ptr[v + 1]
            for p in range(start + pi, end):
                w = succ[p]
                if index[w] == -1:
                    work.append((v, p - start + 1))
                    work.append((w, 0))
                    recurse = True
                    break
                if on_stack[w]:
                    low[v] = min(low[v], index[w])
            if recurse:
                continue
            if low[v] == index[v]:
                comp = []
                while True:
                    w = stack.pop()
                    on_stack[w] = False
                    comp.append(w)
                    if w == v:
                        break
                sccs.append(comp)
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[v])
        # end root
    return sccs


def fine_dm(rows: np.ndarray, cols: np.ndarray) -> FineDM:
    """Fine DM decomposition of the pattern ``{(rows[t], cols[t])}``."""
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    coarse = coarse_dm(rows, cols)

    s_rows = coarse.row_ids[coarse.row_label == SQUARE]
    s_cols = coarse.col_ids[coarse.col_label == SQUARE]
    if s_rows.size == 0:
        return FineDM(coarse=coarse, blocks=[])

    # Restrict the pattern to the square block and compress indices.
    # ``s_rows`` / ``s_cols`` are sorted uniques (coarse_dm derives them
    # from np.unique), so rank-in-block is a single searchsorted.
    in_s_row = np.isin(rows, s_rows)
    in_s_col = np.isin(cols, s_cols)
    keep = in_s_row & in_s_col
    sr = np.searchsorted(s_rows, rows[keep])
    sc = np.searchsorted(s_cols, cols[keep])
    ns = s_rows.size

    # Perfect matching of the square block (exists by DM construction).
    indptr, adj = bipartite_adjacency(sr, sc, ns)
    match_row, match_col = hopcroft_karp(indptr, adj, ns, ns)
    if np.any(match_col == -1):  # pragma: no cover - DM guarantees this
        raise AssertionError("square block of the DM decomposition lost a perfect matching")

    # Digraph on columns: c -> c' if row matched to c has a nonzero in
    # c'.  Built directly in CSR form: gather each matched row's
    # adjacency span (order-preserving ragged gather), drop self-edges.
    starts = indptr[match_col]
    ends = indptr[match_col + 1]
    span = concat_ranges(starts, ends)
    targets = adj[span]
    sources = np.repeat(np.arange(ns, dtype=np.int64), ends - starts)
    keep_edge = targets != sources
    dg_indices = targets[keep_edge]
    dg_indptr = np.zeros(ns + 1, dtype=np.int64)
    np.cumsum(np.bincount(sources[keep_edge], minlength=ns), out=dg_indptr[1:])

    sccs = _tarjan_scc(ns, dg_indptr, dg_indices)
    # Tarjan emits components in reverse topological order; reversing
    # gives an order where edges go from earlier to later blocks, i.e.
    # a block *upper* triangular form.
    blocks = []
    for comp in reversed(sccs):
        comp_cols = np.array(sorted(comp), dtype=np.int64)
        comp_rows = match_col[comp_cols]
        blocks.append((s_rows[comp_rows], s_cols[comp_cols]))
    return FineDM(coarse=coarse, blocks=blocks)
