"""Coarse Dulmage–Mendelsohn decomposition.

Given the pattern of a (sub)matrix as parallel ``(rows, cols)`` arrays,
the coarse DM decomposition splits its nonempty rows and columns into

- a **horizontal** block ``H`` with ``m̂(H) < n̂(H)`` (unless empty),
- a **square**     block ``S`` with ``m̂(S) = n̂(S)``,
- a **vertical**   block ``V`` with ``m̂(V) > n̂(V)`` (unless empty),

arranged in the block-upper-triangular form of the paper's Section II-B.
The decomposition is canonical: it is derived from *any* maximum
matching via alternating-path reachability (Pothen & Fan, 1990) and is
independent of which maximum matching is used.

Key structural facts used by the s2D optimality argument:

- every nonzero in a column of ``H`` lies in a row of ``H``;
- every nonzero in a row of ``V`` lies in a column of ``V``;
- ``m̂(H) + m̂(S) + n̂(V)`` equals the maximum-matching size, which by
  König's theorem is the minimum number of rows+columns covering all
  nonzeros.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.dm.matching import bipartite_adjacency, hopcroft_karp

__all__ = ["CoarseDM", "coarse_dm", "coarse_labels", "minimum_cover_size"]

HORIZONTAL, SQUARE, VERTICAL = 0, 1, 2


@dataclass(frozen=True)
class CoarseDM:
    """Result of the coarse DM decomposition of a sparse pattern.

    All ``*_ids`` arrays hold the original (global) indices of the
    nonempty rows/columns; ``row_label`` / ``col_label`` assign each of
    them to ``HORIZONTAL`` (0), ``SQUARE`` (1) or ``VERTICAL`` (2).
    """

    row_ids: np.ndarray
    col_ids: np.ndarray
    row_label: np.ndarray
    col_label: np.ndarray
    matching_size: int

    @property
    def h_rows(self) -> np.ndarray:
        """Global row ids of the horizontal block."""
        return self.row_ids[self.row_label == HORIZONTAL]

    @property
    def h_cols(self) -> np.ndarray:
        """Global column ids of the horizontal block."""
        return self.col_ids[self.col_label == HORIZONTAL]

    @property
    def s_rows(self) -> np.ndarray:
        return self.row_ids[self.row_label == SQUARE]

    @property
    def s_cols(self) -> np.ndarray:
        return self.col_ids[self.col_label == SQUARE]

    @property
    def v_rows(self) -> np.ndarray:
        return self.row_ids[self.row_label == VERTICAL]

    @property
    def v_cols(self) -> np.ndarray:
        return self.col_ids[self.col_label == VERTICAL]

    def mhat_h(self) -> int:
        """``m̂(H)``: rows of the horizontal block."""
        return int(np.count_nonzero(self.row_label == HORIZONTAL))

    def nhat_h(self) -> int:
        """``n̂(H)``: columns of the horizontal block."""
        return int(np.count_nonzero(self.col_label == HORIZONTAL))

    def volume_reduction(self) -> int:
        """``λ⁻ = n̂(H) − m̂(H)``, the savings of alternative (A2) over
        (A1) for this block (Section IV-B).  Always ≥ 0."""
        return self.nhat_h() - self.mhat_h()

    def horizontal_nnz_mask(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Boolean mask over ``(rows, cols)`` nonzeros selecting those in
        the ``H`` block, i.e. whose column belongs to ``h_cols``.

        By DM structure these nonzeros all lie in ``h_rows``, so the
        mask equals membership of the *nonzero* in ``H``.
        """
        return np.isin(np.asarray(cols), self.h_cols)


def coarse_labels(
    indptr: np.ndarray,
    adj: np.ndarray,
    cindptr: np.ndarray,
    cadj: np.ndarray,
    match_row: np.ndarray,
    match_col: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """H/S/V labels from a maximum matching and both adjacency views.

    The alternating-path reachability core shared by the per-block
    :func:`coarse_dm` and the batched driver in :mod:`repro.dm.batch`
    (which feeds it views over shared pre-sorted buffers).  Labels are
    canonical: any maximum matching yields the same result.
    """
    nr = match_row.size
    nc = match_col.size
    row_label = np.full(nr, SQUARE, dtype=np.int8)
    col_label = np.full(nc, SQUARE, dtype=np.int8)

    # Horizontal: alternating-path reachability from unmatched columns.
    # column --(any edge)--> row --(matching edge)--> column ...
    col_seen = np.zeros(nc, dtype=bool)
    row_seen = np.zeros(nr, dtype=bool)
    queue = deque(int(v) for v in np.flatnonzero(match_col == -1))
    for v in queue:
        col_seen[v] = True
    while queue:
        v = queue.popleft()
        for p in range(cindptr[v], cindptr[v + 1]):
            u = int(cadj[p])
            if row_seen[u]:
                continue
            row_seen[u] = True
            w = int(match_row[u])
            # u must be matched: otherwise column v's alternating path to u
            # would be augmenting, contradicting matching maximality.
            if w != -1 and not col_seen[w]:
                col_seen[w] = True
                queue.append(w)
    row_label[row_seen] = HORIZONTAL
    col_label[col_seen] = HORIZONTAL

    # Vertical: alternating-path reachability from unmatched rows.
    row_seen_v = np.zeros(nr, dtype=bool)
    col_seen_v = np.zeros(nc, dtype=bool)
    queue = deque(int(u) for u in np.flatnonzero(match_row == -1))
    for u in queue:
        row_seen_v[u] = True
    while queue:
        u = queue.popleft()
        for p in range(indptr[u], indptr[u + 1]):
            v = int(adj[p])
            if col_seen_v[v]:
                continue
            col_seen_v[v] = True
            w = int(match_col[v])
            if w != -1 and not row_seen_v[w]:
                row_seen_v[w] = True
                queue.append(w)
    row_label[row_seen_v] = VERTICAL
    col_label[col_seen_v] = VERTICAL
    return row_label, col_label


def coarse_dm(rows: np.ndarray, cols: np.ndarray) -> CoarseDM:
    """Coarse DM decomposition of the pattern ``{(rows[t], cols[t])}``.

    Only nonempty rows/columns participate (a fully empty row or column
    belongs to no block — the paper's DM form explicitly separates the
    zero bordering rows/columns).
    """
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    row_ids, r = np.unique(rows, return_inverse=True)
    col_ids, c = np.unique(cols, return_inverse=True)
    nr, nc = row_ids.size, col_ids.size

    indptr, adj = bipartite_adjacency(r, c, nr)
    match_row, match_col = hopcroft_karp(indptr, adj, nr, nc)

    # Column-side adjacency, needed for reachability from free columns.
    cindptr, cadj = bipartite_adjacency(c, r, nc)

    row_label, col_label = coarse_labels(
        indptr, adj, cindptr, cadj, match_row, match_col
    )
    msize = int(np.count_nonzero(match_row != -1))
    return CoarseDM(
        row_ids=row_ids,
        col_ids=col_ids,
        row_label=row_label,
        col_label=col_label,
        matching_size=msize,
    )


def minimum_cover_size(rows: np.ndarray, cols: np.ndarray) -> int:
    """Minimum number of rows and columns covering all nonzeros.

    Equals the maximum matching size (König) and, per the paper,
    ``m̂(H) + m̂(S) + n̂(V)`` of the DM decomposition.
    """
    dm = coarse_dm(rows, cols)
    return dm.matching_size
