"""Dulmage–Mendelsohn decomposition substrate.

The paper's volume-optimal s2D split (Section IV-A) rests on the coarse
DM decomposition of each off-diagonal block: the *horizontal* block
``H`` (more columns than rows) is the unique maximal sub-block whose
reassignment to the column owner turns column traffic into cheaper row
traffic.  This package implements the whole chain from scratch:

- :mod:`repro.dm.matching` — Hopcroft–Karp maximum bipartite matching;
- :mod:`repro.dm.decomposition` — the coarse (horizontal/square/
  vertical) decomposition built from alternating-path reachability,
  plus König-theorem verification helpers;
- :mod:`repro.dm.batch` — the batched driver running the coarse
  decomposition over every block of a K×K block structure through
  shared pre-sorted buffers (the s2D hot path).
"""

from repro.dm.batch import BlockDM, batched_block_dm, legacy_block_dm
from repro.dm.decomposition import CoarseDM, coarse_dm, minimum_cover_size
from repro.dm.fine import FineDM, fine_dm
from repro.dm.matching import hopcroft_karp, is_matching, matching_size

__all__ = [
    "BlockDM",
    "batched_block_dm",
    "legacy_block_dm",
    "CoarseDM",
    "coarse_dm",
    "minimum_cover_size",
    "FineDM",
    "fine_dm",
    "hopcroft_karp",
    "is_matching",
    "matching_size",
]
