"""Hopcroft–Karp maximum bipartite matching.

Operates on a bipartite graph given in CSR-like form: ``adj_indptr`` /
``adj_cols`` list, for each left vertex (row), the right vertices
(columns) it is adjacent to.  Runs in ``O(E · sqrt(V))``.

This is the only matching routine in the library; the DM decomposition
and all s2D-optimality machinery sit on top of it.  It is implemented
iteratively (explicit stacks) so deep augmenting paths cannot overflow
Python's recursion limit.
"""

from __future__ import annotations

from collections import deque

import numpy as np

__all__ = ["hopcroft_karp", "bipartite_adjacency", "is_matching", "matching_size"]

_INF = np.iinfo(np.int64).max


def bipartite_adjacency(rows: np.ndarray, cols: np.ndarray, nrows: int) -> tuple[np.ndarray, np.ndarray]:
    """CSR adjacency (indptr, col-indices) of the bipartite graph of a
    sparse pattern given as parallel (row, col) arrays.

    Duplicate edges are tolerated (they cannot change a matching).
    """
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    order = np.argsort(rows, kind="stable")
    sorted_rows = rows[order]
    sorted_cols = cols[order]
    counts = np.bincount(sorted_rows, minlength=nrows)
    indptr = np.zeros(nrows + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return indptr, sorted_cols


def hopcroft_karp(
    indptr: np.ndarray, adj: np.ndarray, nrows: int, ncols: int
) -> tuple[np.ndarray, np.ndarray]:
    """Maximum matching of the bipartite graph ``(rows, cols, adj)``.

    Returns ``(match_row, match_col)``: ``match_row[i]`` is the column
    matched to row ``i`` (or −1), and symmetrically for columns.
    """
    match_row = np.full(nrows, -1, dtype=np.int64)
    match_col = np.full(ncols, -1, dtype=np.int64)
    dist = np.empty(nrows, dtype=np.int64)

    # Greedy initialization: cheap and removes most augmentation work.
    # Vectorized handshake: each round, every free column elects its
    # first incident edge and every free row elects its first edge to a
    # still-free column; mutually agreeing (row, column) pairs match.
    # Any valid matching works here — Hopcroft–Karp augments the rest.
    # Rounds are capped: on dense blocks contention can shrink progress
    # to one pair per O(E) round, and the later rounds' stragglers are
    # exactly what the augmentation phases handle well anyway.
    nedges = int(adj.size)
    if nedges:
        edge_row = np.repeat(
            np.arange(nrows, dtype=np.int64), np.diff(indptr).astype(np.int64)
        )
        edge_ids = np.arange(nedges, dtype=np.int64)
        for _round in range(4):
            live = (match_row[edge_row] == -1) & (match_col[adj] == -1)
            eids = edge_ids[live]
            if eids.size == 0:
                break
            # First live edge per column (first occurrence per unmatched
            # column), then first winning edge per row.
            col_first = np.full(ncols, nedges, dtype=np.int64)
            np.minimum.at(col_first, adj[eids], eids)
            winners = eids[col_first[adj[eids]] == eids]
            row_first = np.full(nrows, nedges, dtype=np.int64)
            np.minimum.at(row_first, edge_row[winners], winners)
            agreed = winners[row_first[edge_row[winners]] == winners]
            if agreed.size == 0:
                break
            match_row[edge_row[agreed]] = adj[agreed]
            match_col[adj[agreed]] = edge_row[agreed]

    def bfs() -> bool:
        """Layered BFS from free rows; True if a free column is reachable."""
        queue = deque()
        for u in range(nrows):
            if match_row[u] == -1:
                dist[u] = 0
                queue.append(u)
            else:
                dist[u] = _INF
        found = False
        while queue:
            u = queue.popleft()
            for p in range(indptr[u], indptr[u + 1]):
                w = match_col[adj[p]]
                if w == -1:
                    found = True
                elif dist[w] == _INF:
                    dist[w] = dist[u] + 1
                    queue.append(w)
        return found

    def dfs(root: int) -> bool:
        """Iterative DFS along the layered graph, augmenting if possible.

        Frame ``i`` explores left vertex ``frame_u[i]``; ``frame_v[i]``
        is the right vertex currently being tried from it.  When a free
        right vertex is reached, re-matching every ``(frame_u[i],
        frame_v[i])`` pair flips the whole augmenting path at once.
        """
        frame_u = [root]
        frame_p = [int(indptr[root])]
        frame_v = [-1]
        while frame_u:
            u = frame_u[-1]
            p = frame_p[-1]
            descended = False
            while p < indptr[u + 1]:
                v = int(adj[p])
                p += 1
                w = int(match_col[v])
                if w == -1:
                    frame_v[-1] = v
                    for uu, vv in zip(frame_u, frame_v):
                        match_row[uu] = vv
                        match_col[vv] = uu
                    return True
                if dist[w] == dist[u] + 1:
                    frame_p[-1] = p
                    frame_v[-1] = v
                    frame_u.append(w)
                    frame_p.append(int(indptr[w]))
                    frame_v.append(-1)
                    descended = True
                    break
            if not descended:
                dist[u] = _INF  # dead end: prune for the rest of this phase
                frame_u.pop()
                frame_p.pop()
                frame_v.pop()
        return False

    while bfs():
        for u in range(nrows):
            if match_row[u] == -1:
                dfs(u)
    return match_row, match_col


def is_matching(match_row: np.ndarray, match_col: np.ndarray) -> bool:
    """Check mutual consistency of the two matching arrays."""
    for u, v in enumerate(match_row):
        if v != -1 and match_col[v] != u:
            return False
    for v, u in enumerate(match_col):
        if u != -1 and match_row[u] != v:
            return False
    return True


def matching_size(match_row: np.ndarray) -> int:
    """Cardinality of the matching."""
    return int(np.count_nonzero(np.asarray(match_row) != -1))
