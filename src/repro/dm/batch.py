"""Batched coarse-DM driver over all blocks of a :class:`BlockStructure`.

The s2D machinery needs the coarse DM decomposition of *every*
nonempty off-diagonal block of the K×K structure.  The legacy path
(:func:`legacy_block_dm`) re-slices the triplet arrays and re-runs
``np.unique`` / ``argsort`` inside :func:`repro.dm.decomposition.coarse_dm`
once per block.  The batched driver here performs all of that shared
preprocessing in a handful of global sorted passes:

- one ``np.unique`` over ``block·stride + row`` keys yields, for every
  block at once, its sorted distinct row ids *and* the local row index
  of every nonzero (ditto for columns);
- one stable ``argsort`` of the same keys yields every block's
  row-major CSR adjacency as a contiguous slice of a single buffer
  (ditto for the column-side adjacency).

Per block only the genuinely combinatorial part remains: Hopcroft–Karp
on the precomputed adjacency views and the alternating-path labeling
(:func:`repro.dm.decomposition.coarse_labels`).  Because each block's
adjacency arrays are bit-identical to what the per-block path builds,
the matchings, labels and H-masks are bit-identical too — the golden
tests pin this.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dm.decomposition import HORIZONTAL, CoarseDM, coarse_dm, coarse_labels
from repro.dm.matching import hopcroft_karp
from repro.sparse.blocks import BlockStructure

__all__ = ["BlockDM", "batched_block_dm", "legacy_block_dm"]


def _sorted_groups(keys: np.ndarray):
    """One stable sort serving four derived views of ``keys``.

    Returns ``(order, uniq, inverse, counts)`` — the stable sorting
    permutation, the sorted distinct keys, each element's index into
    ``uniq``, and the multiplicity of each distinct key.  Equivalent to
    ``np.argsort(keys, kind="stable")`` plus ``np.unique(keys,
    return_inverse=True, return_counts=True)``, but pays for a single
    sort instead of two.
    """
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    n = sorted_keys.size
    new = np.empty(n, dtype=bool)
    new[0] = True
    np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=new[1:])
    uniq = sorted_keys[new]
    starts = np.flatnonzero(new)
    counts = np.diff(np.append(starts, n))
    inverse = np.empty(n, dtype=np.int64)
    inverse[order] = np.cumsum(new) - 1
    return order, uniq, inverse, counts


@dataclass(frozen=True)
class BlockDM:
    """Coarse DM decomposition of one block ``A_{ℓk}``.

    ``nnz_idx`` are the block's nonzero indices into the canonical
    triplet arrays (block-sorted order, identical to
    ``BlockStructure.block_nnz_indices(ℓ, k)``); ``h_mask`` flags the
    nonzeros of the horizontal sub-block ``H`` among them.
    """

    row_part: int
    col_part: int
    nnz_idx: np.ndarray
    dm: CoarseDM
    h_mask: np.ndarray

    @property
    def h_nnz(self) -> np.ndarray:
        """Triplet indices of the ``H`` nonzeros (alternative A2 moves these)."""
        return self.nnz_idx[self.h_mask]


def batched_block_dm(
    bs: BlockStructure, offdiagonal_only: bool = True
) -> list[BlockDM]:
    """Coarse DM of every nonempty (off-diagonal) block, batched.

    Results are ordered by block key ``ℓ·K + k`` — the same order
    :meth:`BlockStructure.nonempty_offdiagonal_blocks` yields.
    """
    stats = bs.block_stats()
    if stats.nblocks == 0:
        return []
    order = bs.order
    rows_s = bs.rows[order]
    cols_s = bs.cols[order]
    bid = np.repeat(bs.block_keys, stats.nnz)
    nrows = np.int64(bs.nrows)
    ncols = np.int64(bs.ncols)

    # Distinct (block, row) pairs: kr is block-major, so the unique key
    # array concatenates every block's sorted distinct rows, and the
    # inverse gives each nonzero's global pair index.  The same stable
    # sort also orders each block's edges row-major (it permutes only
    # within block spans), yielding every block's adjacency as a slice.
    kr = bid * nrows + rows_s
    order_r, kr_u, r_pair_of_nnz, r_pair_counts = _sorted_groups(kr)
    kc = bid * ncols + cols_s
    order_c, kc_u, c_pair_of_nnz, c_pair_counts = _sorted_groups(kc)

    row_off = np.zeros(stats.nblocks + 1, dtype=np.int64)
    np.cumsum(stats.mhat, out=row_off[1:])
    col_off = np.zeros(stats.nblocks + 1, dtype=np.int64)
    np.cumsum(stats.nhat, out=col_off[1:])

    blk_of_nnz = np.repeat(np.arange(stats.nblocks, dtype=np.int64), stats.nnz)
    r_local = r_pair_of_nnz - row_off[blk_of_nnz]
    c_local = c_pair_of_nnz - col_off[blk_of_nnz]

    adj_all = c_local[order_r]
    cadj_all = r_local[order_c]

    results: list[BlockDM] = []
    keys = stats.keys
    indptr_all = stats.indptr
    for i in range(stats.nblocks):
        ell, kk = divmod(int(keys[i]), bs.nparts)
        if offdiagonal_only and ell == kk:
            continue
        s, e = int(indptr_all[i]), int(indptr_all[i + 1])
        nr = int(stats.mhat[i])
        nc = int(stats.nhat[i])
        indptr = np.zeros(nr + 1, dtype=np.int64)
        np.cumsum(r_pair_counts[row_off[i] : row_off[i + 1]], out=indptr[1:])
        cindptr = np.zeros(nc + 1, dtype=np.int64)
        np.cumsum(c_pair_counts[col_off[i] : col_off[i + 1]], out=cindptr[1:])
        adj = adj_all[s:e]
        cadj = cadj_all[s:e]
        match_row, match_col = hopcroft_karp(indptr, adj, nr, nc)
        row_label, col_label = coarse_labels(
            indptr, adj, cindptr, cadj, match_row, match_col
        )
        dm = CoarseDM(
            row_ids=kr_u[row_off[i] : row_off[i + 1]] - keys[i] * nrows,
            col_ids=kc_u[col_off[i] : col_off[i + 1]] - keys[i] * ncols,
            row_label=row_label,
            col_label=col_label,
            matching_size=int(np.count_nonzero(match_row != -1)),
        )
        h_mask = col_label[c_local[s:e]] == HORIZONTAL
        results.append(
            BlockDM(
                row_part=ell,
                col_part=kk,
                nnz_idx=order[s:e],
                dm=dm,
                h_mask=h_mask,
            )
        )
    return results


def legacy_block_dm(
    bs: BlockStructure, offdiagonal_only: bool = True
) -> list[BlockDM]:
    """The original slice-per-block DM driver (golden reference).

    Calls :func:`coarse_dm` on each block's freshly sliced triplets,
    exactly as the seed's ``_block_choices`` did; used by equivalence
    tests and the engine micro-benchmark, never on a hot path.
    """
    results: list[BlockDM] = []
    k = bs.nparts
    for key in bs.block_keys.tolist():
        ell, kk = divmod(int(key), k)
        if offdiagonal_only and ell == kk:
            continue
        idx = bs.block_nnz_indices(ell, kk)
        rows = bs.rows[idx]
        cols = bs.cols[idx]
        dm = coarse_dm(rows, cols)
        results.append(
            BlockDM(
                row_part=ell,
                col_part=kk,
                nnz_idx=idx,
                dm=dm,
                h_mask=dm.horizontal_nnz_mask(rows, cols),
            )
        )
    return results
