"""Exception types for the :mod:`repro` library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class PartitionError(ReproError):
    """Raised when a partition is structurally invalid.

    Examples: a part id out of range, a nonzero assigned to a processor
    that owns neither its row's y-entry nor its column's x-entry (s2D
    admissibility violation), or mismatched partition sizes.
    """


class ModelError(ReproError):
    """Raised when a hypergraph model cannot be built for a matrix."""


class SimulationError(ReproError):
    """Raised when the distributed SpMV simulation detects an inconsistency.

    The simulator validates that every received message was actually sent,
    that phases are executed in order, and that the assembled output vector
    equals the serial reference ``A @ x``.
    """


class ConfigError(ReproError):
    """Raised for invalid user-supplied configuration values."""


class NativeBuildError(ReproError):
    """Raised when the native C kernel backend cannot be built or loaded.

    Carries the reason (no compiler on PATH, compile failure, corrupt
    cached library).  ``backend="auto"`` callers never see it — the
    dispatcher records the reason and falls back to the NumPy kernels —
    but an explicit ``backend="native"`` request surfaces it as a
    :class:`ConfigError`-style hard failure.
    """


class VerificationError(ReproError):
    """Raised when the static verification layer rejects an artifact.

    Carries a :class:`repro.verify.VerifyReport` summary: the plan-IR
    checker found an out-of-bounds index array, a non-covering owned-row
    set, a send-slot/ledger mismatch, or a statically unsound superstep
    schedule.  Unlike :class:`SimulationError` — which fires when a
    *run* goes wrong — this fires before anything executes.
    """


class SerializationError(ReproError):
    """Raised when a save file is malformed, mistyped, or fails the
    plan-IR verification that :func:`repro.partition.serialize.load_plan`
    runs on untrusted input.

    Loading a corrupted compiled plan without this guard surfaces much
    later as a downstream ``IndexError`` — or, under the native kernels,
    a silent out-of-bounds memory write.
    """


class UsageError(ConfigError):
    """Raised for malformed command-level inputs (CLI flags, job counts).

    A :class:`ConfigError` specialization the entry points convert into
    a clean one-line message instead of a traceback — e.g. a negative
    ``--jobs`` value, which previously surfaced as a pool ``ValueError``.
    """
