"""Exception types for the :mod:`repro` library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class PartitionError(ReproError):
    """Raised when a partition is structurally invalid.

    Examples: a part id out of range, a nonzero assigned to a processor
    that owns neither its row's y-entry nor its column's x-entry (s2D
    admissibility violation), or mismatched partition sizes.
    """


class ModelError(ReproError):
    """Raised when a hypergraph model cannot be built for a matrix."""


class SimulationError(ReproError):
    """Raised when the distributed SpMV simulation detects an inconsistency.

    The simulator validates that every received message was actually sent,
    that phases are executed in order, and that the assembled output vector
    equals the serial reference ``A @ x``.
    """


class ConfigError(ReproError):
    """Raised for invalid user-supplied configuration values."""


class NativeBuildError(ReproError):
    """Raised when the native C kernel backend cannot be built or loaded.

    Carries the reason (no compiler on PATH, compile failure, corrupt
    cached library).  ``backend="auto"`` callers never see it — the
    dispatcher records the reason and falls back to the NumPy kernels —
    but an explicit ``backend="native"`` request surfaces it as a
    :class:`ConfigError`-style hard failure.
    """


class VerificationError(ReproError):
    """Raised when the static verification layer rejects an artifact.

    Carries a :class:`repro.verify.VerifyReport` summary: the plan-IR
    checker found an out-of-bounds index array, a non-covering owned-row
    set, a send-slot/ledger mismatch, or a statically unsound superstep
    schedule.  Unlike :class:`SimulationError` — which fires when a
    *run* goes wrong — this fires before anything executes.
    """


class SerializationError(ReproError):
    """Raised when a save file is malformed, mistyped, or fails the
    plan-IR verification that :func:`repro.partition.serialize.load_plan`
    runs on untrusted input.

    Loading a corrupted compiled plan without this guard surfaces much
    later as a downstream ``IndexError`` — or, under the native kernels,
    a silent out-of-bounds memory write.
    """


class CellExecutionError(ReproError):
    """A sweep/campaign grid cell failed, with its identity attached.

    Pool workers used to propagate raw pickled exceptions with no hint
    of *which* ``(matrix, scheme, K, seed)`` cell blew up or which task
    ran it; this wrapper carries the cell coordinates and the
    originating worker traceback text so a failure deep in an
    8-matrix × 3-scheme × 3-K grid names its cell.  Pickles cleanly
    across process boundaries (the structured fields survive the
    pool's exception round-trip).
    """

    def __init__(self, message: str, cell: dict | None = None,
                 task_index: int | None = None, worker_tb: str = ""):
        super().__init__(message)
        self.cell = dict(cell) if cell else {}
        self.task_index = task_index
        self.worker_tb = worker_tb

    def __reduce__(self):
        return (
            type(self),
            (self.args[0], self.cell, self.task_index, self.worker_tb),
        )


class CampaignError(ReproError):
    """Raised when a campaign cannot maintain its crash-safety contract.

    Examples: resuming a journal that belongs to a different grid, a
    ``done``-journaled record vanishing from the artifact cache at
    finalization, or fault kinds that need a fork pool on a platform
    without one.  Per-cell *failures* never raise this — they are
    retried or quarantined; the campaign degrades gracefully instead of
    aborting.
    """


class UsageError(ConfigError):
    """Raised for malformed command-level inputs (CLI flags, job counts).

    A :class:`ConfigError` specialization the entry points convert into
    a clean one-line message instead of a traceback — e.g. a negative
    ``--jobs`` value, which previously surfaced as a pool ``ValueError``.
    """
