"""Standard two-phase (expand / compute / fold) parallel SpMV.

Runs *any* nonzero partition — the fine-grain 2D baseline, the 2D-b
checkerboard and the 1D-b Boman scheme all execute here.  For the
Cartesian schemes the bounded message pattern (expand inside mesh
columns, fold inside mesh rows) emerges from their vector placement;
no special-case code is involved, which is itself a useful check.

Message assembly and the locality audit are array kernels (see
:mod:`repro.simulate.singlephase`); the seed implementation is
preserved in :mod:`repro.simulate.legacy` with bit-identical ledgers.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.kernels import group_sum, pair_counts
from repro.partition.types import SpMVPartition
from repro.simulate import profiling
from repro.simulate.common import check_locality, delivery_keys, resolve_x
from repro.simulate.machine import PhaseCost, SpMVRun
from repro.simulate.messages import Ledger

__all__ = ["run_two_phase"]


def run_two_phase(p: SpMVPartition, x: np.ndarray | None = None) -> SpMVRun:
    """Execute the expand/compute/fold SpMV under partition ``p``."""
    profiling.note_run()
    m = p.matrix
    nrows, ncols = m.shape
    k = p.nparts
    x = resolve_x(x, ncols)

    rows, cols = m.row, m.col
    vals = np.asarray(m.data, dtype=np.float64)
    owner = p.nnz_part
    x_owner_of_nnz = p.vectors.x_part[cols]

    ledger = Ledger(k)

    # ---------------- Phase 1: Expand ---------------------------------
    with profiling.stage("expand"):
        # The sender of x_j is its owner — a function of j — so expand
        # items deduplicate on the narrower (receiver, j) key, which is
        # also the sorted join table of the compute-phase audit.
        need = x_owner_of_nnz != owner
        recv_keys = delivery_keys(owner[need], cols[need], ncols)
        e_dst = recv_keys // ncols
        e_j = recv_keys % ncols
        e_src = p.vectors.x_part[e_j]
        ledger.record_pairs("expand", *pair_counts(e_src, e_dst, k))

    # ---------------- Phase 2: Compute --------------------------------
    with profiling.stage("compute"):
        flops = 2 * np.bincount(owner, minlength=k).astype(np.int64)
        # Locality audit: every expanded x read must match a delivered
        # (receiver, j) key.
        check_locality(recv_keys, owner[need], cols[need], ncols)
        # Partial results per (holder, row) — dense keys, bincount fastpath.
        pk = owner.astype(np.int64) * nrows + rows
        pkeys, psums = group_sum(pk, vals * x[cols])
        p_holder = pkeys // nrows
        p_row = pkeys % nrows
        p_dst = p.vectors.y_part[p_row]

    # ---------------- Phase 3: Fold -----------------------------------
    with profiling.stage("fold"):
        away = p_holder != p_dst
        ledger.record_pairs("fold", *pair_counts(p_holder[away], p_dst[away], k))

        y = np.bincount(p_row, weights=psums, minlength=nrows)
        flops_agg = np.bincount(p_dst[away], minlength=k).astype(np.int64)

    with profiling.stage("verify"):
        ref = m @ x
        if not np.allclose(y, ref, rtol=1e-10, atol=1e-12):
            raise SimulationError("two-phase SpMV result differs from serial A @ x")

    return SpMVRun(
        y=y,
        ledger=ledger,
        phases=[
            PhaseCost("expand", comm_phase="expand"),
            PhaseCost("compute", flops=flops),
            PhaseCost("fold", comm_phase="fold"),
            PhaseCost("aggregate", flops=flops_agg),
        ],
        nnz=int(m.nnz),
        kind=p.kind,
    )
