"""Standard two-phase (expand / compute / fold) parallel SpMV.

Runs *any* nonzero partition — the fine-grain 2D baseline, the 2D-b
checkerboard and the 1D-b Boman scheme all execute here.  For the
Cartesian schemes the bounded message pattern (expand inside mesh
columns, fold inside mesh rows) emerges from their vector placement;
no special-case code is involved, which is itself a useful check.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.kernels import group_sum
from repro.partition.types import SpMVPartition
from repro.simulate.machine import PhaseCost, SpMVRun
from repro.simulate.messages import Ledger

__all__ = ["run_two_phase"]


def run_two_phase(p: SpMVPartition, x: np.ndarray | None = None) -> SpMVRun:
    """Execute the expand/compute/fold SpMV under partition ``p``."""
    m = p.matrix
    nrows, ncols = m.shape
    k = p.nparts
    if x is None:
        x = np.arange(1, ncols + 1, dtype=np.float64) / ncols
    x = np.asarray(x, dtype=np.float64)
    if x.size != ncols:
        raise SimulationError(f"x has size {x.size}, expected {ncols}")

    rows, cols, vals = m.row, m.col, m.data.astype(np.float64)
    owner = p.nnz_part
    x_owner_of_nnz = p.vectors.x_part[cols]
    y_owner_of_nnz = p.vectors.y_part[rows]

    ledger = Ledger(k)

    # ---------------- Phase 1: Expand ---------------------------------
    need = x_owner_of_nnz != owner
    nk = (x_owner_of_nnz[need].astype(np.int64) * k + owner[need]) * ncols + cols[need]
    nkeys = np.unique(nk)
    e_src = (nkeys // ncols) // k
    e_dst = (nkeys // ncols) % k
    e_j = nkeys % ncols
    pair_keys, pair_counts = np.unique(nkeys // ncols, return_counts=True)
    for pk, c in zip(pair_keys, pair_counts):
        ledger.record("expand", int(pk // k), int(pk % k), int(c))
    recv_x = {(int(d), int(j)): x[j] for d, j in zip(e_dst, e_j)}

    # ---------------- Phase 2: Compute --------------------------------
    flops = np.zeros(k, dtype=np.int64)
    np.add.at(flops, owner, 2)
    xs = np.empty(rows.size, dtype=np.float64)
    local = ~need
    xs[local] = x[cols[local]]
    for t in np.flatnonzero(need):
        key = (int(owner[t]), int(cols[t]))
        if key not in recv_x:
            raise SimulationError(
                f"P{owner[t]} multiplied with x[{cols[t]}] it neither owns nor received"
            )
        xs[t] = recv_x[key]
    # Partial results per (holder, row) — dense keys, bincount fastpath.
    pk = owner.astype(np.int64) * nrows + rows
    pkeys, psums = group_sum(pk, vals * xs)
    p_holder = pkeys // nrows
    p_row = pkeys % nrows
    p_dst = p.vectors.y_part[p_row]

    # ---------------- Phase 3: Fold -----------------------------------
    away = p_holder != p_dst
    fold_pairs, fold_counts = np.unique(
        p_holder[away] * k + p_dst[away], return_counts=True
    )
    for pk2, c in zip(fold_pairs, fold_counts):
        ledger.record("fold", int(pk2 // k), int(pk2 % k), int(c))

    y = np.zeros(nrows, dtype=np.float64)
    np.add.at(y, p_row[~away], psums[~away])
    flops_agg = np.zeros(k, dtype=np.int64)
    np.add.at(y, p_row[away], psums[away])
    np.add.at(flops_agg, p_dst[away], 1)

    ref = m @ x
    if not np.allclose(y, ref, rtol=1e-10, atol=1e-12):
        raise SimulationError("two-phase SpMV result differs from serial A @ x")

    return SpMVRun(
        y=y,
        ledger=ledger,
        phases=[
            PhaseCost("expand", comm_phase="expand"),
            PhaseCost("compute", flops=flops),
            PhaseCost("fold", comm_phase="fold"),
            PhaseCost("aggregate", flops=flops_agg),
        ],
        nnz=int(m.nnz),
        kind=p.kind,
    )
