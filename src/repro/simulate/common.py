"""Helpers shared by the three SpMV executors.

The executors differ in *which* items travel (fused packets, expand
words, two-hop routed copies) but agree on the bookkeeping around
them: the delivered ``(receiver, j)`` key table, the locality audit
against it, and the fold-time ownership guard.  Keeping those here
means a change to the audit semantics or messages lands in every
executor at once.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.kernels import in_sorted, unique_ints

__all__ = ["delivery_keys", "check_locality", "check_fold_ownership"]


def delivery_keys(receivers: np.ndarray, cols: np.ndarray, ncols: int) -> np.ndarray:
    """Sorted distinct ``receiver·ncols + j`` delivery keys.

    The sender of ``x_j`` is its owner — a function of ``j`` — so this
    narrow key identifies each delivered x word; the sorted table
    doubles as the join side of :func:`check_locality`.
    """
    return unique_ints(receivers.astype(np.int64) * ncols + cols)


def check_locality(
    recv_keys: np.ndarray, proc: np.ndarray, col: np.ndarray, ncols: int
) -> None:
    """Raise unless every ``(proc[i], col[i])`` x read was delivered.

    ``recv_keys`` is a :func:`delivery_keys` table; ``proc``/``col``
    list the non-local reads of the compute phase.  One searchsorted
    join replaces the seed's per-nonzero dict probe.
    """
    need_keys = proc * np.int64(ncols) + col
    missing = np.flatnonzero(~in_sorted(recv_keys, need_keys))
    if missing.size:
        t = missing[0]
        raise SimulationError(
            f"P{proc[t]} multiplied with x[{col[t]}] it neither owns nor received"
        )


def check_fold_ownership(
    y_part: np.ndarray, rows: np.ndarray, dst: np.ndarray, what: str = "partial"
) -> None:
    """Raise unless each folded ``rows[i]`` is owned by its ``dst[i]``.

    A consistency guard (the delivery tables derive from the vector
    partition today, so it cannot fire) that becomes load-bearing the
    moment deliveries are built any other way, e.g. by a real message
    backend.
    """
    wrong = np.flatnonzero(y_part[rows] != dst)
    if wrong.size:
        t = wrong[0]
        raise SimulationError(
            f"{what} for y[{rows[t]}] delivered to non-owner P{dst[t]}"
        )
