"""Helpers shared by the three SpMV executors.

The executors differ in *which* items travel (fused packets, expand
words, two-hop routed copies) but agree on the bookkeeping around
them: the delivered ``(receiver, j)`` key table, the locality audit
against it, and the fold-time ownership guard.  Keeping those here
means a change to the audit semantics or messages lands in every
executor at once.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.kernels import in_sorted, unique_ints

__all__ = [
    "classify_nonzeros",
    "mesh_intermediate",
    "resolve_x",
    "delivery_keys",
    "check_locality",
    "check_fold_ownership",
]


def resolve_x(x: np.ndarray | None, ncols: int) -> np.ndarray:
    """The executors' input vector: the default ramp when ``x`` is
    None, otherwise ``x`` validated and as float64."""
    if x is None:
        return np.arange(1, ncols + 1, dtype=np.float64) / ncols
    x = np.asarray(x, dtype=np.float64)
    if x.size != ncols:
        raise SimulationError(f"x has size {x.size}, expected {ncols}")
    return x


def classify_nonzeros(p) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """The single-phase nonzero classification of partition ``p``.

    Returns ``(rp, cp, owner, pre_mask, main_mask)``: the row/column
    vector owners and nonzero owners, the group-(ii) precompute mask
    (x local, y non-local) and the row-owner compute mask.  Raises
    unless the two masks partition every nonzero.  Shared by the
    single-phase executor, the mesh-routed executor and the runtime
    compiler so the classification cannot drift between them.
    """
    rp = p.vectors.y_part[p.matrix.row]
    cp = p.vectors.x_part[p.matrix.col]
    owner = p.nnz_part
    pre_mask = (owner == cp) & (rp != cp)
    main_mask = owner == rp
    if not np.all(pre_mask ^ main_mask):
        raise SimulationError("nonzero classification is not a partition")
    return rp, cp, owner, pre_mask, main_mask


def mesh_intermediate(src: np.ndarray, dst: np.ndarray, pc: int) -> np.ndarray:
    """Two-hop routing intermediate on a ``Pr × Pc`` mesh.

    The processor in ``src``'s mesh row and ``dst``'s mesh column —
    the combining stop of the s2D-b routed exchange.
    """
    return (src // pc) * pc + (dst % pc)


def delivery_keys(receivers: np.ndarray, cols: np.ndarray, ncols: int) -> np.ndarray:
    """Sorted distinct ``receiver·ncols + j`` delivery keys.

    The sender of ``x_j`` is its owner — a function of ``j`` — so this
    narrow key identifies each delivered x word; the sorted table
    doubles as the join side of :func:`check_locality`.
    """
    return unique_ints(receivers.astype(np.int64) * ncols + cols)


def check_locality(
    recv_keys: np.ndarray, proc: np.ndarray, col: np.ndarray, ncols: int
) -> None:
    """Raise unless every ``(proc[i], col[i])`` x read was delivered.

    ``recv_keys`` is a :func:`delivery_keys` table; ``proc``/``col``
    list the non-local reads of the compute phase.  One searchsorted
    join replaces the seed's per-nonzero dict probe.
    """
    need_keys = proc * np.int64(ncols) + col
    missing = np.flatnonzero(~in_sorted(recv_keys, need_keys))
    if missing.size:
        t = missing[0]
        raise SimulationError(
            f"P{proc[t]} multiplied with x[{col[t]}] it neither owns nor received"
        )


def check_fold_ownership(
    y_part: np.ndarray, rows: np.ndarray, dst: np.ndarray, what: str = "partial"
) -> None:
    """Raise unless each folded ``rows[i]`` is owned by its ``dst[i]``.

    A consistency guard (the delivery tables derive from the vector
    partition today, so it cannot fire) that becomes load-bearing the
    moment deliveries are built any other way, e.g. by a real message
    backend.
    """
    wrong = np.flatnonzero(y_part[rows] != dst)
    if wrong.size:
        t = wrong[0]
        raise SimulationError(
            f"{what} for y[{rows[t]}] delivered to non-owner P{dst[t]}"
        )
