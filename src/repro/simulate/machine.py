"""BSP-style machine cost model and the simulated-run container.

A run is a sequence of supersteps; superstep time is

    γ · max_p flops_p  +  β · max_p max(sent_p, recv_p) words
                        +  α · max_p max(#sent_p, #recv_p)

and the run time is the sum over supersteps (communication phases pay
their α/β term, computation phases their γ term; fused phases pay
both).  Speedup is measured against the serial 2·nnz-flop SpMV on the
same model — the same normalization the paper uses for its ``Sp``
columns.

Default parameters are calibrated to an interconnect-dominated system
like the paper's Cray XE6 Gemini torus: a message costs about three
orders of magnitude more than a flop, a word about three flops.  The
trends of the tables (who wins, where latency starts to dominate) are
governed by these ratios, not their absolute values.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.simulate.messages import Ledger

__all__ = ["MachineModel", "PhaseCost", "SpMVRun"]


@dataclass(frozen=True)
class MachineModel:
    """α (per message), β (per word), γ (per flop) cost coefficients."""

    alpha: float = 1000.0
    beta: float = 3.0
    gamma: float = 1.0

    def phase_time(
        self,
        flops: np.ndarray | None,
        ledger: Ledger | None = None,
        phase: str | None = None,
    ) -> float:
        """Cost of one superstep."""
        t = 0.0
        if flops is not None and len(flops):
            t += self.gamma * float(np.max(flops))
        if ledger is not None and phase is not None:
            words = max(
                float(ledger.sent_volume(phase).max(initial=0)),
                float(ledger.recv_volume(phase).max(initial=0)),
            )
            msgs = max(
                float(ledger.sent_msgs(phase).max(initial=0)),
                float(ledger.recv_msgs(phase).max(initial=0)),
            )
            t += self.beta * words + self.alpha * msgs
        return t

    def serial_time(self, nnz: int) -> float:
        """Serial SpMV: one multiply + one add per nonzero."""
        return self.gamma * 2.0 * float(nnz)


@dataclass(frozen=True)
class PhaseCost:
    """One superstep of a run: optional compute plus optional comm."""

    name: str
    flops: np.ndarray | None = None
    comm_phase: str | None = None


@dataclass
class SpMVRun:
    """Everything a simulated parallel SpMV produced.

    ``y`` is the assembled output vector (already verified against the
    serial product by the executor); ``phases`` defines the superstep
    schedule the machine model prices.
    """

    y: np.ndarray
    ledger: Ledger
    phases: list[PhaseCost]
    nnz: int
    kind: str = ""
    meta: dict = field(default_factory=dict)

    def time(self, machine: MachineModel) -> float:
        """Total simulated run time."""
        return sum(
            machine.phase_time(ph.flops, self.ledger if ph.comm_phase else None, ph.comm_phase)
            for ph in self.phases
        )

    def speedup(self, machine: MachineModel) -> float:
        """Speedup vs. the serial SpMV under the same model."""
        t = self.time(machine)
        return machine.serial_time(self.nnz) / t if t > 0 else float("inf")

    def breakdown(self, machine: MachineModel) -> list[dict]:
        """Per-superstep cost decomposition (compute / words / messages).

        Useful for diagnosing *why* a partition is slow: the paper's
        latency-dominated instances show the α term eating the budget
        at large K.
        """
        out = []
        for ph in self.phases:
            entry = {"name": ph.name, "compute": 0.0, "bandwidth": 0.0, "latency": 0.0}
            if ph.flops is not None and len(ph.flops):
                entry["compute"] = machine.gamma * float(np.max(ph.flops))
            if ph.comm_phase is not None:
                words = max(
                    float(self.ledger.sent_volume(ph.comm_phase).max(initial=0)),
                    float(self.ledger.recv_volume(ph.comm_phase).max(initial=0)),
                )
                msgs = max(
                    float(self.ledger.sent_msgs(ph.comm_phase).max(initial=0)),
                    float(self.ledger.recv_msgs(ph.comm_phase).max(initial=0)),
                )
                entry["bandwidth"] = machine.beta * words
                entry["latency"] = machine.alpha * msgs
            entry["total"] = entry["compute"] + entry["bandwidth"] + entry["latency"]
            out.append(entry)
        return out

    def total_flops(self) -> np.ndarray:
        """Per-processor flops summed over compute phases."""
        out = None
        for ph in self.phases:
            if ph.flops is not None:
                out = ph.flops.copy() if out is None else out + ph.flops
        if out is None:
            raise ValueError("run has no compute phases")
        return out
