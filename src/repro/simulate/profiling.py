"""Per-phase wall-clock timing of the SpMV executors.

Mirrors :mod:`repro.hypergraph.profiling`: wrap any code in
:func:`collect` and every executor phase run inside the ``with`` block
(precompute, message assembly, compute, verification — however deeply
nested inside :meth:`repro.engine.PartitionEngine.run`) accumulates
into the yielded :class:`SimulateProfile`.  The CLI's
``simulate --profile`` flag and the simulation benchmark use this to
show where executor time goes without threading an argument through
every call site.

This module is a thin adapter over :mod:`repro.obs`: the ambient slot
is an :class:`repro.obs.AmbientCollector` and :func:`stage` doubles as
an ``obs.span("simulate.<phase>")``, so executor phases appear in any
open :func:`repro.obs.tracing` tree with no extra plumbing while the
profile API and the ``--profile`` table stay exactly as before.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field

from repro import obs

__all__ = ["SimulateProfile", "collect", "active_profile", "stage", "note_run"]


@dataclass
class SimulateProfile:
    """Accumulated per-phase wall-clock seconds of one (or more) runs."""

    stages: dict[str, float] = field(default_factory=dict)
    runs: int = 0

    @property
    def total_s(self) -> float:
        return sum(self.stages.values())

    def add(self, name: str, seconds: float) -> None:
        self.stages[name] = self.stages.get(name, 0.0) + seconds

    def as_dict(self) -> dict:
        return {**self.stages, "total_s": self.total_s, "runs": self.runs}

    def stage_table(self) -> str:
        """Human-readable per-phase breakdown (the CLI ``--profile`` view)."""
        lines = ["phase          seconds   share"]
        denom = self.total_s or 1.0
        for name, s in self.stages.items():
            lines.append(f"{name:<13} {s:8.4f}  {100.0 * s / denom:5.1f}%")
        lines.append(f"{'total':<13} {self.total_s:8.4f}")
        return "\n".join(lines)


_ACTIVE = obs.AmbientCollector(SimulateProfile)


def active_profile() -> SimulateProfile | None:
    """The ambient profile collector, if a :func:`collect` block is open."""
    return _ACTIVE.active()


def note_run() -> None:
    """Count one executor invocation against the ambient collector."""
    prof = _ACTIVE.active()
    if prof is not None:
        prof.runs += 1
    obs.add("simulate.runs")


@contextmanager
def stage(name: str):
    """Time a block and charge it to ``name`` when a collector is open.

    A no-op (beyond two ambient reads) when neither a :func:`collect`
    block nor an :func:`repro.obs.tracing` block is active, so the
    executors call it unconditionally.
    """
    prof = _ACTIVE.active()
    if prof is None and obs.active_trace() is None:
        yield
        return
    with obs.span(f"simulate.{name}"):
        t0 = obs.now()
        try:
            yield
        finally:
            if prof is not None:
                prof.add(name, obs.now() - t0)


@contextmanager
def collect(profile: SimulateProfile | None = None):
    """Collect executor phase timings from everything run inside."""
    with _ACTIVE.collect(profile) as prof:
        yield prof
