"""Per-phase wall-clock timing of the SpMV executors.

Mirrors :mod:`repro.hypergraph.profiling`: wrap any code in
:func:`collect` and every executor phase run inside the ``with`` block
(precompute, message assembly, compute, verification — however deeply
nested inside :meth:`repro.engine.PartitionEngine.run`) accumulates
into the yielded :class:`SimulateProfile`.  The CLI's
``simulate --profile`` flag and the simulation benchmark use this to
show where executor time goes without threading an argument through
every call site.

The ambient collector is a module global; the library is single-
threaded by design, matching the rest of the reproduction harness.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["SimulateProfile", "collect", "active_profile", "stage", "note_run"]


@dataclass
class SimulateProfile:
    """Accumulated per-phase wall-clock seconds of one (or more) runs."""

    stages: dict[str, float] = field(default_factory=dict)
    runs: int = 0

    @property
    def total_s(self) -> float:
        return sum(self.stages.values())

    def add(self, name: str, seconds: float) -> None:
        self.stages[name] = self.stages.get(name, 0.0) + seconds

    def as_dict(self) -> dict:
        return {**self.stages, "total_s": self.total_s, "runs": self.runs}

    def stage_table(self) -> str:
        """Human-readable per-phase breakdown (the CLI ``--profile`` view)."""
        lines = ["phase          seconds   share"]
        denom = self.total_s or 1.0
        for name, s in self.stages.items():
            lines.append(f"{name:<13} {s:8.4f}  {100.0 * s / denom:5.1f}%")
        lines.append(f"{'total':<13} {self.total_s:8.4f}")
        return "\n".join(lines)


_ACTIVE: SimulateProfile | None = None


def active_profile() -> SimulateProfile | None:
    """The ambient profile collector, if a :func:`collect` block is open."""
    return _ACTIVE


def note_run() -> None:
    """Count one executor invocation against the ambient collector."""
    if _ACTIVE is not None:
        _ACTIVE.runs += 1


@contextmanager
def stage(name: str):
    """Time a block and charge it to ``name`` when a collector is open.

    A no-op (beyond one global read) when no :func:`collect` block is
    active, so the executors call it unconditionally.
    """
    prof = _ACTIVE
    if prof is None:
        yield
        return
    t0 = time.perf_counter()
    try:
        yield
    finally:
        prof.add(name, time.perf_counter() - t0)


@contextmanager
def collect(profile: SimulateProfile | None = None):
    """Collect executor phase timings from everything run inside."""
    global _ACTIVE
    prof = profile if profile is not None else SimulateProfile()
    prev = _ACTIVE
    _ACTIVE = prof
    try:
        yield prof
    finally:
        _ACTIVE = prev
