"""Seed SpMV executors, preserved verbatim as the golden baseline.

These are the pre-kernel implementations of the three simulated
executors — pair-counting dicts, per-nonzero ``recv_x`` lookups and
per-word partial folds in Python loops.  The vectorized executors in
:mod:`repro.simulate.singlephase` / ``twophase`` / ``bounded`` must
produce *bit-identical ledgers* (same phases, same (src, dst) pairs,
same word counts) and the same ``y``; ``tests/test_simulate_legacy_golden.py``
pins this on the generator suite and ``benchmarks/bench_simulate.py``
uses these as the timing baseline.

Do not modernise this module: its value is being frozen.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError, SimulationError
from repro.kernels import group_sum
from repro.partition.checkerboard import mesh_shape
from repro.partition.types import SpMVPartition
from repro.simulate.machine import PhaseCost, SpMVRun
from repro.simulate.messages import Ledger

__all__ = [
    "legacy_run_single_phase",
    "legacy_run_two_phase",
    "legacy_run_s2d_bounded",
]

PHASE = "expand-and-fold"


def legacy_run_single_phase(p: SpMVPartition, x: np.ndarray | None = None) -> SpMVRun:
    """Seed single-phase executor (dict-based message assembly)."""
    p.validate_s2d()
    m = p.matrix
    nrows, ncols = m.shape
    k = p.nparts
    if x is None:
        x = np.arange(1, ncols + 1, dtype=np.float64) / ncols
    x = np.asarray(x, dtype=np.float64)
    if x.size != ncols:
        raise SimulationError(f"x has size {x.size}, expected {ncols}")

    rows, cols, vals = m.row, m.col, m.data.astype(np.float64)
    rp = p.vectors.y_part[rows]
    cp = p.vectors.x_part[cols]
    owner = p.nnz_part

    pre_mask = (owner == cp) & (rp != cp)
    main_mask = owner == rp
    if not np.all(pre_mask ^ main_mask):
        raise SimulationError("nonzero classification is not a partition")

    ledger = Ledger(k)

    # ---------------- Phase 1: Precompute -----------------------------
    flops_pre = np.zeros(k, dtype=np.int64)
    np.add.at(flops_pre, owner[pre_mask], 2)
    if not np.all(cp[pre_mask] == owner[pre_mask]):
        raise SimulationError("precompute touched a non-local x entry")
    pk = owner[pre_mask].astype(np.int64) * nrows + rows[pre_mask]
    pkeys, psums = group_sum(pk, vals[pre_mask] * x[cols[pre_mask]])
    part_src = pkeys // nrows
    part_row = pkeys % nrows
    part_dst = p.vectors.y_part[part_row]
    if np.any(part_src == part_dst):
        raise SimulationError("a precomputed partial is already local")

    # ---------------- Phase 2: Expand-and-Fold ------------------------
    need_mask = main_mask & (cp != rp)
    nk = (cp[need_mask].astype(np.int64) * k + rp[need_mask]) * ncols + cols[need_mask]
    nkeys = np.unique(nk)
    x_src = (nkeys // ncols) // k
    x_dst = (nkeys // ncols) % k
    x_j = nkeys % ncols

    pair_words: dict[tuple[int, int], int] = {}
    for s, d in zip(x_src, x_dst):
        pair_words[(int(s), int(d))] = pair_words.get((int(s), int(d)), 0) + 1
    for s, d in zip(part_src, part_dst):
        pair_words[(int(s), int(d))] = pair_words.get((int(s), int(d)), 0) + 1
    for (s, d), words in sorted(pair_words.items()):
        ledger.record(PHASE, s, d, words)

    recv_x = {}  # (dst, j) -> value
    for s, d, j in zip(x_src, x_dst, x_j):
        recv_x[(int(d), int(j))] = x[j]
    recv_partial_rows: dict[int, list] = {}
    for s, d, i, v in zip(part_src, part_dst, part_row, psums):
        recv_partial_rows.setdefault(int(d), []).append((int(i), float(v)))

    # ---------------- Phase 3: Compute --------------------------------
    flops_main = np.zeros(k, dtype=np.int64)
    np.add.at(flops_main, owner[main_mask], 2)
    y = np.zeros(nrows, dtype=np.float64)
    xs = np.empty(int(np.count_nonzero(main_mask)), dtype=np.float64)
    mrows = rows[main_mask]
    mcols = cols[main_mask]
    mvals = vals[main_mask]
    mown = owner[main_mask]
    local = cp[main_mask] == mown
    xs[local] = x[mcols[local]]
    for t in np.flatnonzero(~local):
        key = (int(mown[t]), int(mcols[t]))
        if key not in recv_x:
            raise SimulationError(
                f"P{mown[t]} multiplied with x[{mcols[t]}] it neither owns nor received"
            )
        xs[t] = recv_x[key]
    np.add.at(y, mrows, mvals * xs)
    for d, items in recv_partial_rows.items():
        for i, v in items:
            if p.vectors.y_part[i] != d:
                raise SimulationError(f"partial for y[{i}] delivered to non-owner P{d}")
            y[i] += v
            flops_main[d] += 1

    ref = m @ x
    if not np.allclose(y, ref, rtol=1e-10, atol=1e-12):
        raise SimulationError("single-phase SpMV result differs from serial A @ x")

    return SpMVRun(
        y=y,
        ledger=ledger,
        phases=[
            PhaseCost("precompute", flops=flops_pre),
            PhaseCost(PHASE, comm_phase=PHASE),
            PhaseCost("compute", flops=flops_main),
        ],
        nnz=int(m.nnz),
        kind=p.kind,
    )


def legacy_run_two_phase(p: SpMVPartition, x: np.ndarray | None = None) -> SpMVRun:
    """Seed two-phase executor (dict-based expand delivery)."""
    m = p.matrix
    nrows, ncols = m.shape
    k = p.nparts
    if x is None:
        x = np.arange(1, ncols + 1, dtype=np.float64) / ncols
    x = np.asarray(x, dtype=np.float64)
    if x.size != ncols:
        raise SimulationError(f"x has size {x.size}, expected {ncols}")

    rows, cols, vals = m.row, m.col, m.data.astype(np.float64)
    owner = p.nnz_part
    x_owner_of_nnz = p.vectors.x_part[cols]

    ledger = Ledger(k)

    # ---------------- Phase 1: Expand ---------------------------------
    need = x_owner_of_nnz != owner
    nk = (x_owner_of_nnz[need].astype(np.int64) * k + owner[need]) * ncols + cols[need]
    nkeys = np.unique(nk)
    e_dst = (nkeys // ncols) % k
    e_j = nkeys % ncols
    pair_keys, pair_counts = np.unique(nkeys // ncols, return_counts=True)
    for pk, c in zip(pair_keys, pair_counts):
        ledger.record("expand", int(pk // k), int(pk % k), int(c))
    recv_x = {(int(d), int(j)): x[j] for d, j in zip(e_dst, e_j)}

    # ---------------- Phase 2: Compute --------------------------------
    flops = np.zeros(k, dtype=np.int64)
    np.add.at(flops, owner, 2)
    xs = np.empty(rows.size, dtype=np.float64)
    local = ~need
    xs[local] = x[cols[local]]
    for t in np.flatnonzero(need):
        key = (int(owner[t]), int(cols[t]))
        if key not in recv_x:
            raise SimulationError(
                f"P{owner[t]} multiplied with x[{cols[t]}] it neither owns nor received"
            )
        xs[t] = recv_x[key]
    pk = owner.astype(np.int64) * nrows + rows
    pkeys, psums = group_sum(pk, vals * xs)
    p_holder = pkeys // nrows
    p_row = pkeys % nrows
    p_dst = p.vectors.y_part[p_row]

    # ---------------- Phase 3: Fold -----------------------------------
    away = p_holder != p_dst
    fold_pairs, fold_counts = np.unique(
        p_holder[away] * k + p_dst[away], return_counts=True
    )
    for pk2, c in zip(fold_pairs, fold_counts):
        ledger.record("fold", int(pk2 // k), int(pk2 % k), int(c))

    y = np.zeros(nrows, dtype=np.float64)
    np.add.at(y, p_row[~away], psums[~away])
    flops_agg = np.zeros(k, dtype=np.int64)
    np.add.at(y, p_row[away], psums[away])
    np.add.at(flops_agg, p_dst[away], 1)

    ref = m @ x
    if not np.allclose(y, ref, rtol=1e-10, atol=1e-12):
        raise SimulationError("two-phase SpMV result differs from serial A @ x")

    return SpMVRun(
        y=y,
        ledger=ledger,
        phases=[
            PhaseCost("expand", comm_phase="expand"),
            PhaseCost("compute", flops=flops),
            PhaseCost("fold", comm_phase="fold"),
            PhaseCost("aggregate", flops=flops_agg),
        ],
        nnz=int(m.nnz),
        kind=p.kind,
    )


def legacy_run_s2d_bounded(
    p: SpMVPartition,
    x: np.ndarray | None = None,
    shape: tuple[int, int] | None = None,
) -> SpMVRun:
    """Seed mesh-routed executor (dict-based hop assembly).

    Note: the seed accepted a wrongly-sized ``x`` silently, skipped the
    nonzero-classification check and folded combined partials without
    verifying ownership; the vectorized executor fixes all three.  For
    *valid* inputs both produce identical runs.
    """
    p.validate_s2d()
    m = p.matrix
    nrows, ncols = m.shape
    k = p.nparts
    pr, pc = shape if shape is not None else p.meta.get("mesh", mesh_shape(k))
    if pr * pc != k:
        raise ConfigError(f"mesh {pr}x{pc} does not cover {k} processors")
    if x is None:
        x = np.arange(1, ncols + 1, dtype=np.float64) / ncols
    x = np.asarray(x, dtype=np.float64)

    rows, cols, vals = m.row, m.col, m.data.astype(np.float64)
    rp = p.vectors.y_part[rows]
    cp = p.vectors.x_part[cols]
    owner = p.nnz_part
    pre_mask = (owner == cp) & (rp != cp)
    main_mask = owner == rp

    ledger = Ledger(k)

    # ---------------- Precompute --------------------------------------
    flops_pre = np.zeros(k, dtype=np.int64)
    np.add.at(flops_pre, owner[pre_mask], 2)
    pkey = owner[pre_mask].astype(np.int64) * nrows + rows[pre_mask]
    pkeys, inv = np.unique(pkey, return_inverse=True)
    psums = np.zeros(pkeys.size, dtype=np.float64)
    np.add.at(psums, inv, vals[pre_mask] * x[cols[pre_mask]])
    y_src = (pkeys // nrows).astype(np.int64)
    y_i = (pkeys % nrows).astype(np.int64)
    y_dst = p.vectors.y_part[y_i]

    need_mask = main_mask & (cp != rp)
    nk = (cp[need_mask].astype(np.int64) * k + rp[need_mask]) * ncols + cols[need_mask]
    nkeys = np.unique(nk)
    x_src = ((nkeys // ncols) // k).astype(np.int64)
    x_dst = ((nkeys // ncols) % k).astype(np.int64)
    x_j = (nkeys % ncols).astype(np.int64)

    def intermediate(src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        return (src // pc) * pc + (dst % pc)

    x_t = intermediate(x_src, x_dst)
    y_t = intermediate(y_src, y_dst)

    # ---------------- Row phase (hop 1, with combining) ----------------
    x1 = np.unique((x_src * k + x_t) * ncols + x_j)
    x1 = x1[(x1 // ncols) // k != (x1 // ncols) % k]  # drop src == t
    hop1_y = y_t != y_src
    pair1: dict[tuple[int, int], int] = {}
    for key in x1:
        s, t = int((key // ncols) // k), int((key // ncols) % k)
        pair1[(s, t)] = pair1.get((s, t), 0) + 1
    for s, t in zip(y_src[hop1_y], y_t[hop1_y]):
        pair1[(int(s), int(t))] = pair1.get((int(s), int(t)), 0) + 1
    for (s, t), words in sorted(pair1.items()):
        ledger.record("route-row", s, t, words)

    # ---------------- Combine at intermediates -------------------------
    ckey = y_t * nrows + y_i
    ckeys, cinv = np.unique(ckey, return_inverse=True)
    csums = np.zeros(ckeys.size, dtype=np.float64)
    np.add.at(csums, cinv, psums)
    flops_combine = np.zeros(k, dtype=np.int64)
    dup_counts = np.bincount(cinv, minlength=ckeys.size)
    np.add.at(flops_combine, ckeys // nrows, dup_counts - 1)
    c_t = (ckeys // nrows).astype(np.int64)
    c_i = (ckeys % nrows).astype(np.int64)
    c_dst = p.vectors.y_part[c_i]

    # ---------------- Column phase (hop 2) -----------------------------
    hop2_x = x_t != x_dst
    x2keys = np.unique((x_t[hop2_x] * k + x_dst[hop2_x]) * ncols + x_j[hop2_x])
    hop2_y = c_t != c_dst
    pair2: dict[tuple[int, int], int] = {}
    for key in x2keys:
        t, d = int((key // ncols) // k), int((key // ncols) % k)
        pair2[(t, d)] = pair2.get((t, d), 0) + 1
    for t, d in zip(c_t[hop2_y], c_dst[hop2_y]):
        pair2[(int(t), int(d))] = pair2.get((int(t), int(d)), 0) + 1
    for (t, d), words in sorted(pair2.items()):
        ledger.record("route-col", t, d, words)

    for (s, t) in pair1:
        if s // pc != t // pc:
            raise SimulationError(f"row-phase message {s}->{t} leaves mesh row")
    for (t, d) in pair2:
        if t % pc != d % pc:
            raise SimulationError(f"column-phase message {t}->{d} leaves mesh column")

    # ---------------- Compute ------------------------------------------
    flops_main = np.zeros(k, dtype=np.int64)
    np.add.at(flops_main, owner[main_mask], 2)
    recv_x = {(int(d), int(j)): x[j] for d, j in zip(x_dst, x_j)}
    xs = np.empty(int(np.count_nonzero(main_mask)), dtype=np.float64)
    mrows = rows[main_mask]
    mcols = cols[main_mask]
    mvals = vals[main_mask]
    mown = owner[main_mask]
    local = cp[main_mask] == mown
    xs[local] = x[mcols[local]]
    for tt in np.flatnonzero(~local):
        key = (int(mown[tt]), int(mcols[tt]))
        if key not in recv_x:
            raise SimulationError(
                f"P{mown[tt]} multiplied with x[{mcols[tt]}] it neither owns nor received"
            )
        xs[tt] = recv_x[key]
    y = np.zeros(nrows, dtype=np.float64)
    np.add.at(y, mrows, mvals * xs)
    np.add.at(y, c_i, csums)
    np.add.at(flops_main, c_dst, 1)

    ref = m @ x
    if not np.allclose(y, ref, rtol=1e-10, atol=1e-12):
        raise SimulationError("s2D-b SpMV result differs from serial A @ x")

    return SpMVRun(
        y=y,
        ledger=ledger,
        phases=[
            PhaseCost("precompute", flops=flops_pre),
            PhaseCost("route-row", comm_phase="route-row"),
            PhaseCost("combine", flops=flops_combine),
            PhaseCost("route-col", comm_phase="route-col"),
            PhaseCost("compute", flops=flops_main),
        ],
        nnz=int(m.nnz),
        kind=p.kind or "s2D-b",
        meta={"mesh": (pr, pc)},
    )
