"""Mesh-routed execution of s2D-b (Section VI-B).

Same numerics as the single-phase executor, but the fused ``[x̂, ŷ]``
exchange travels in two hops over a ``Pr × Pc`` virtual mesh: a row
phase to the intermediate ``(r_src, c_dst)`` and a column phase to the
destination.  Intermediates *combine*: x entries bound for several
processors in one mesh column cross the row phase once, and partial
results for the same ``y_i`` arriving from different senders in a mesh
row are summed before being forwarded (those adds are charged as
flops of the in-between combine step).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError, SimulationError
from repro.partition.checkerboard import mesh_shape
from repro.partition.types import SpMVPartition
from repro.simulate.machine import PhaseCost, SpMVRun
from repro.simulate.messages import Ledger

__all__ = ["run_s2d_bounded"]


def run_s2d_bounded(
    p: SpMVPartition,
    x: np.ndarray | None = None,
    shape: tuple[int, int] | None = None,
) -> SpMVRun:
    """Execute the two-hop routed single-phase SpMV under ``p``."""
    p.validate_s2d()
    m = p.matrix
    nrows, ncols = m.shape
    k = p.nparts
    pr, pc = shape if shape is not None else p.meta.get("mesh", mesh_shape(k))
    if pr * pc != k:
        raise ConfigError(f"mesh {pr}x{pc} does not cover {k} processors")
    if x is None:
        x = np.arange(1, ncols + 1, dtype=np.float64) / ncols
    x = np.asarray(x, dtype=np.float64)

    rows, cols, vals = m.row, m.col, m.data.astype(np.float64)
    rp = p.vectors.y_part[rows]
    cp = p.vectors.x_part[cols]
    owner = p.nnz_part
    pre_mask = (owner == cp) & (rp != cp)
    main_mask = owner == rp

    ledger = Ledger(k)

    # ---------------- Precompute --------------------------------------
    flops_pre = np.zeros(k, dtype=np.int64)
    np.add.at(flops_pre, owner[pre_mask], 2)
    pkey = owner[pre_mask].astype(np.int64) * nrows + rows[pre_mask]
    pkeys, inv = np.unique(pkey, return_inverse=True)
    psums = np.zeros(pkeys.size, dtype=np.float64)
    np.add.at(psums, inv, vals[pre_mask] * x[cols[pre_mask]])
    y_src = (pkeys // nrows).astype(np.int64)
    y_i = (pkeys % nrows).astype(np.int64)
    y_dst = p.vectors.y_part[y_i]

    # x needs of the compute phase.
    need_mask = main_mask & (cp != rp)
    nk = (cp[need_mask].astype(np.int64) * k + rp[need_mask]) * ncols + cols[need_mask]
    nkeys = np.unique(nk)
    x_src = ((nkeys // ncols) // k).astype(np.int64)
    x_dst = ((nkeys // ncols) % k).astype(np.int64)
    x_j = (nkeys % ncols).astype(np.int64)

    def intermediate(src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        return (src // pc) * pc + (dst % pc)

    x_t = intermediate(x_src, x_dst)
    y_t = intermediate(y_src, y_dst)

    # ---------------- Row phase (hop 1, with combining) ----------------
    # x: unique (src, t, j) — one copy toward each mesh column.
    x1 = np.unique((x_src * k + x_t) * ncols + x_j)
    x1 = x1[(x1 // ncols) // k != (x1 // ncols) % k]  # drop src == t
    # y: unique (src, t, i); value is the producer's partial.
    hop1_y = y_t != y_src
    pair1: dict[tuple[int, int], int] = {}
    for key in x1:
        s, t = int((key // ncols) // k), int((key // ncols) % k)
        pair1[(s, t)] = pair1.get((s, t), 0) + 1
    for s, t in zip(y_src[hop1_y], y_t[hop1_y]):
        pair1[(int(s), int(t))] = pair1.get((int(s), int(t)), 0) + 1
    for (s, t), words in sorted(pair1.items()):
        ledger.record("route-row", s, t, words)

    # State after hop 1: x values and partials present at intermediates.
    # (items whose hop-1 was a no-op are already "at" the source.)

    # ---------------- Combine at intermediates -------------------------
    # Partials for the same (t, i) merge; each merge beyond the first is
    # one add at t.
    ckey = y_t * nrows + y_i
    ckeys, cinv = np.unique(ckey, return_inverse=True)
    csums = np.zeros(ckeys.size, dtype=np.float64)
    np.add.at(csums, cinv, psums)
    flops_combine = np.zeros(k, dtype=np.int64)
    dup_counts = np.bincount(cinv, minlength=ckeys.size)
    np.add.at(flops_combine, ckeys // nrows, dup_counts - 1)
    c_t = (ckeys // nrows).astype(np.int64)
    c_i = (ckeys % nrows).astype(np.int64)
    c_dst = p.vectors.y_part[c_i]

    # ---------------- Column phase (hop 2) -----------------------------
    hop2_x = x_t != x_dst
    x2keys = np.unique((x_t[hop2_x] * k + x_dst[hop2_x]) * ncols + x_j[hop2_x])
    hop2_y = c_t != c_dst
    pair2: dict[tuple[int, int], int] = {}
    for key in x2keys:
        t, d = int((key // ncols) // k), int((key // ncols) % k)
        pair2[(t, d)] = pair2.get((t, d), 0) + 1
    for t, d in zip(c_t[hop2_y], c_dst[hop2_y]):
        pair2[(int(t), int(d))] = pair2.get((int(t), int(d)), 0) + 1
    for (t, d), words in sorted(pair2.items()):
        ledger.record("route-col", t, d, words)

    # Sanity: every hop stays within one mesh row / one mesh column.
    for (s, t) in pair1:
        if s // pc != t // pc:
            raise SimulationError(f"row-phase message {s}->{t} leaves mesh row")
    for (t, d) in pair2:
        if t % pc != d % pc:
            raise SimulationError(f"column-phase message {t}->{d} leaves mesh column")

    # ---------------- Compute ------------------------------------------
    flops_main = np.zeros(k, dtype=np.int64)
    np.add.at(flops_main, owner[main_mask], 2)
    # x availability at destinations: routed items x_dst received x_j.
    recv_x = {(int(d), int(j)): x[j] for d, j in zip(x_dst, x_j)}
    xs = np.empty(int(np.count_nonzero(main_mask)), dtype=np.float64)
    mrows = rows[main_mask]
    mcols = cols[main_mask]
    mvals = vals[main_mask]
    mown = owner[main_mask]
    local = cp[main_mask] == mown
    xs[local] = x[mcols[local]]
    for tt in np.flatnonzero(~local):
        key = (int(mown[tt]), int(mcols[tt]))
        if key not in recv_x:
            raise SimulationError(
                f"P{mown[tt]} multiplied with x[{mcols[tt]}] it neither owns nor received"
            )
        xs[tt] = recv_x[key]
    y = np.zeros(nrows, dtype=np.float64)
    np.add.at(y, mrows, mvals * xs)
    # Fold in the (combined) partials at their owners.
    np.add.at(y, c_i, csums)
    np.add.at(flops_main, c_dst, 1)

    ref = m @ x
    if not np.allclose(y, ref, rtol=1e-10, atol=1e-12):
        raise SimulationError("s2D-b SpMV result differs from serial A @ x")

    return SpMVRun(
        y=y,
        ledger=ledger,
        phases=[
            PhaseCost("precompute", flops=flops_pre),
            PhaseCost("route-row", comm_phase="route-row"),
            PhaseCost("combine", flops=flops_combine),
            PhaseCost("route-col", comm_phase="route-col"),
            PhaseCost("compute", flops=flops_main),
        ],
        nnz=int(m.nnz),
        kind=p.kind or "s2D-b",
        meta={"mesh": (pr, pc)},
    )
