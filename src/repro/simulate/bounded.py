"""Mesh-routed execution of s2D-b (Section VI-B).

Same numerics as the single-phase executor, but the fused ``[x̂, ŷ]``
exchange travels in two hops over a ``Pr × Pc`` virtual mesh: a row
phase to the intermediate ``(r_src, c_dst)`` and a column phase to the
destination.  Intermediates *combine*: x entries bound for several
processors in one mesh column cross the row phase once, and partial
results for the same ``y_i`` arriving from different senders in a mesh
row are summed before being forwarded (those adds are charged as
flops of the in-between combine step).

Hop word counts come from :func:`~repro.kernels.pair_counts`, the
mesh-containment and locality checks are vectorized assertions, and
the combined-partial fold verifies delivery ownership before adding —
the seed executor (preserved in :mod:`repro.simulate.legacy`) skipped
the ``x`` size check, the nonzero-classification check and the fold
ownership check.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError, SimulationError
from repro.kernels import group_sum, pair_counts, unique_ints
from repro.partition.checkerboard import mesh_shape
from repro.partition.types import SpMVPartition
from repro.simulate import profiling
from repro.simulate.common import (
    check_fold_ownership,
    check_locality,
    classify_nonzeros,
    delivery_keys,
    mesh_intermediate,
    resolve_x,
)
from repro.simulate.machine import PhaseCost, SpMVRun
from repro.simulate.messages import Ledger

__all__ = ["run_s2d_bounded"]


def run_s2d_bounded(
    p: SpMVPartition,
    x: np.ndarray | None = None,
    shape: tuple[int, int] | None = None,
) -> SpMVRun:
    """Execute the two-hop routed single-phase SpMV under ``p``."""
    profiling.note_run()
    p.validate_s2d()
    m = p.matrix
    nrows, ncols = m.shape
    k = p.nparts
    pr, pc = shape if shape is not None else p.meta.get("mesh", mesh_shape(k))
    if pr * pc != k:
        raise ConfigError(f"mesh {pr}x{pc} does not cover {k} processors")
    x = resolve_x(x, ncols)

    rows, cols = m.row, m.col
    vals = np.asarray(m.data, dtype=np.float64)
    rp, cp, owner, pre_mask, main_mask = classify_nonzeros(p)

    ledger = Ledger(k)

    # ---------------- Precompute --------------------------------------
    with profiling.stage("precompute"):
        flops_pre = 2 * np.bincount(owner[pre_mask], minlength=k).astype(np.int64)
        # Partials keyed (producer, row): dense keys, bincount fastpath.
        pk = owner[pre_mask].astype(np.int64) * nrows + rows[pre_mask]
        pkeys, psums = group_sum(pk, vals[pre_mask] * x[cols[pre_mask]])
        y_src = pkeys // nrows
        y_i = pkeys % nrows
        y_dst = p.vectors.y_part[y_i]

        # x needs of the compute phase: the sender of x_j is its owner,
        # a function of j, so delivery items deduplicate on the
        # narrower (receiver, j) key — also the sorted join table of
        # the compute-phase locality audit.
        need_mask = main_mask & (cp != rp)
        recv_keys = delivery_keys(rp[need_mask], cols[need_mask], ncols)
        x_dst = recv_keys // ncols
        x_j = recv_keys % ncols
        x_src = p.vectors.x_part[x_j]

    x_t = mesh_intermediate(x_src, x_dst, pc)
    y_t = mesh_intermediate(y_src, y_dst, pc)

    # ---------------- Row phase (hop 1, with combining) ----------------
    with profiling.stage("route-row"):
        # x: unique (src, t, j) — one copy toward each mesh column.
        # src is a function of j, so (t, j) identifies the copy; several
        # final destinations in one mesh column collapse to one key.
        x1 = unique_ints(x_t * np.int64(ncols) + x_j)
        x1_t = x1 // ncols
        x1_src = p.vectors.x_part[x1 % ncols]
        hop1_x = x1_src != x1_t  # drop src == t
        # y: unique (src, t, i); value is the producer's partial.
        hop1_y = y_t != y_src
        p1_src, p1_dst, p1_words = pair_counts(
            np.concatenate((x1_src[hop1_x], y_src[hop1_y])),
            np.concatenate((x1_t[hop1_x], y_t[hop1_y])),
            k,
        )
        # Sanity: the row phase stays within one mesh row.
        bad = np.flatnonzero(p1_src // pc != p1_dst // pc)
        if bad.size:
            t = bad[0]
            raise SimulationError(
                f"row-phase message {p1_src[t]}->{p1_dst[t]} leaves mesh row"
            )
        ledger.record_pairs("route-row", p1_src, p1_dst, p1_words)

    # State after hop 1: x values and partials present at intermediates.
    # (items whose hop-1 was a no-op are already "at" the source.)

    # ---------------- Combine at intermediates -------------------------
    with profiling.stage("combine"):
        # Partials for the same (t, i) merge; each merge beyond the first
        # is one add at t.
        ckey = y_t * nrows + y_i
        ckeys, csums = group_sum(ckey, psums)
        pos = np.searchsorted(ckeys, ckey)
        dup_counts = np.bincount(pos, minlength=ckeys.size)
        c_t = ckeys // nrows
        c_i = ckeys % nrows
        # Destination of each combined packet, carried from the
        # precompute items; the fold asserts it owns the row.  Like the
        # locality audits, that is a consistency guard: both sides
        # derive from the vector partition today, and the guard becomes
        # load-bearing if the routing tables are ever built differently.
        c_dst = np.empty(ckeys.size, dtype=np.int64)
        c_dst[pos] = y_dst
        flops_combine = np.bincount(
            c_t, weights=dup_counts - 1, minlength=k
        ).astype(np.int64)

    # ---------------- Column phase (hop 2) -----------------------------
    with profiling.stage("route-col"):
        # (dst, j) pairs are already unique, and t is a function of
        # (owner(j), dst) — no dedup needed for the second hop.
        hop2_x = x_t != x_dst
        hop2_y = c_t != c_dst
        p2_src, p2_dst, p2_words = pair_counts(
            np.concatenate((x_t[hop2_x], c_t[hop2_y])),
            np.concatenate((x_dst[hop2_x], c_dst[hop2_y])),
            k,
        )
        # Sanity: the column phase stays within one mesh column.
        bad = np.flatnonzero(p2_src % pc != p2_dst % pc)
        if bad.size:
            t = bad[0]
            raise SimulationError(
                f"column-phase message {p2_src[t]}->{p2_dst[t]} leaves mesh column"
            )
        ledger.record_pairs("route-col", p2_src, p2_dst, p2_words)

    # ---------------- Compute ------------------------------------------
    with profiling.stage("compute"):
        flops_main = 2 * np.bincount(owner[main_mask], minlength=k).astype(np.int64)
        mrows = rows[main_mask]
        mcols = cols[main_mask]
        mvals = vals[main_mask]
        mown = owner[main_mask]
        # Locality audit: routed (dst, j) deliveries must cover every
        # non-local x read.
        nonlocal_mask = cp[main_mask] != mown
        check_locality(recv_keys, mown[nonlocal_mask], mcols[nonlocal_mask], ncols)
        y = np.bincount(mrows, weights=mvals * x[mcols], minlength=nrows)
        # Fold in the (combined) partials — only at rows the receiving
        # processor actually owns.
        check_fold_ownership(p.vectors.y_part, c_i, c_dst, what="combined partial")
        if c_i.size:
            y += np.bincount(c_i, weights=csums, minlength=nrows)
            flops_main += np.bincount(c_dst, minlength=k).astype(np.int64)

    with profiling.stage("verify"):
        ref = m @ x
        if not np.allclose(y, ref, rtol=1e-10, atol=1e-12):
            raise SimulationError("s2D-b SpMV result differs from serial A @ x")

    return SpMVRun(
        y=y,
        ledger=ledger,
        phases=[
            PhaseCost("precompute", flops=flops_pre),
            PhaseCost("route-row", comm_phase="route-row"),
            PhaseCost("combine", flops=flops_combine),
            PhaseCost("route-col", comm_phase="route-col"),
            PhaseCost("compute", flops=flops_main),
        ],
        nnz=int(m.nnz),
        kind=p.kind or "s2D-b",
        meta={"mesh": (pr, pc)},
    )
