"""The paper's modified parallel SpMV (Section III) — single comm phase.

Phases executed per processor ``P_k``:

1. **Precompute** — for every owned nonzero whose ``x_j`` is local but
   ``y_i`` is not (group ii), accumulate the partial ``ȳ_i``.
2. **Expand-and-Fold** — send to each ``P_ℓ`` one fused packet
   ``[x̂^{(k)}_ℓ, ŷ^{(ℓ)}_k]``: the x entries ``P_ℓ`` needs and the
   partials computed for ``P_ℓ``'s rows.
3. **Compute** — finish ``y^{(k)}`` from the diagonal block, the
   row-side off-diagonal nonzeros (with received x), and the received
   partials.

For a 1D rowwise partition the precompute phase is empty and the fused
packet degenerates to the classic expand — the generalization property
the paper notes.  The executor enforces data locality: a processor only
multiplies with x values it owns or has received, and the assembled
output is verified against the serial product.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.kernels import group_sum
from repro.partition.types import SpMVPartition
from repro.simulate.machine import PhaseCost, SpMVRun
from repro.simulate.messages import Ledger

__all__ = ["run_single_phase"]

PHASE = "expand-and-fold"


def run_single_phase(p: SpMVPartition, x: np.ndarray | None = None) -> SpMVRun:
    """Execute the single-phase SpMV under partition ``p``.

    ``p`` must be s2D-admissible (1D rowwise/columnwise partitions are,
    trivially).  Returns the simulated run; ``run.y`` equals ``A @ x``.
    """
    p.validate_s2d()
    m = p.matrix
    nrows, ncols = m.shape
    k = p.nparts
    if x is None:
        x = np.arange(1, ncols + 1, dtype=np.float64) / ncols
    x = np.asarray(x, dtype=np.float64)
    if x.size != ncols:
        raise SimulationError(f"x has size {x.size}, expected {ncols}")

    rows, cols, vals = m.row, m.col, m.data.astype(np.float64)
    rp = p.vectors.y_part[rows]
    cp = p.vectors.x_part[cols]
    owner = p.nnz_part

    # Group (ii): x local, y non-local → precompute.
    pre_mask = (owner == cp) & (rp != cp)
    # Everything else is finished in the compute phase at the row owner.
    main_mask = owner == rp
    if not np.all(pre_mask ^ main_mask):
        raise SimulationError("nonzero classification is not a partition")

    ledger = Ledger(k)

    # ---------------- Phase 1: Precompute -----------------------------
    flops_pre = np.zeros(k, dtype=np.int64)
    np.add.at(flops_pre, owner[pre_mask], 2)
    # Locality: the x value used here must be owned by the computing proc.
    if not np.all(cp[pre_mask] == owner[pre_mask]):
        raise SimulationError("precompute touched a non-local x entry")
    # Partials ȳ_i accumulated at their producer: key (producer, i).
    # Partials are keyed (producer, row): a dense key range, so the
    # shared kernel's bincount fastpath applies.
    pk = owner[pre_mask].astype(np.int64) * nrows + rows[pre_mask]
    pkeys, psums = group_sum(pk, vals[pre_mask] * x[cols[pre_mask]])
    part_src = pkeys // nrows
    part_row = pkeys % nrows
    part_dst = p.vectors.y_part[part_row]
    if np.any(part_src == part_dst):
        raise SimulationError("a precomputed partial is already local")

    # ---------------- Phase 2: Expand-and-Fold ------------------------
    # x needs: row-side off-diagonal nonzeros read x they do not own.
    need_mask = main_mask & (cp != rp)
    nk = (cp[need_mask].astype(np.int64) * k + rp[need_mask]) * ncols + cols[need_mask]
    nkeys = np.unique(nk)
    x_src = (nkeys // ncols) // k
    x_dst = (nkeys // ncols) % k
    x_j = nkeys % ncols

    # One fused packet per communicating pair: count words per (src, dst).
    pair_words: dict[tuple[int, int], int] = {}
    for s, d in zip(x_src, x_dst):
        pair_words[(int(s), int(d))] = pair_words.get((int(s), int(d)), 0) + 1
    for s, d in zip(part_src, part_dst):
        pair_words[(int(s), int(d))] = pair_words.get((int(s), int(d)), 0) + 1
    for (s, d), words in sorted(pair_words.items()):
        ledger.record(PHASE, s, d, words)

    # "Deliver": receivers learn x values and partial sums.
    recv_x = {}  # (dst, j) -> value
    for s, d, j in zip(x_src, x_dst, x_j):
        recv_x[(int(d), int(j))] = x[j]
    recv_partial_rows: dict[int, list] = {}
    for s, d, i, v in zip(part_src, part_dst, part_row, psums):
        recv_partial_rows.setdefault(int(d), []).append((int(i), float(v)))

    # ---------------- Phase 3: Compute --------------------------------
    flops_main = np.zeros(k, dtype=np.int64)
    np.add.at(flops_main, owner[main_mask], 2)
    y = np.zeros(nrows, dtype=np.float64)
    # Local/received x for the row-owner products.
    xs = np.empty(int(np.count_nonzero(main_mask)), dtype=np.float64)
    mrows = rows[main_mask]
    mcols = cols[main_mask]
    mvals = vals[main_mask]
    mown = owner[main_mask]
    local = cp[main_mask] == mown
    xs[local] = x[mcols[local]]
    for t in np.flatnonzero(~local):
        key = (int(mown[t]), int(mcols[t]))
        if key not in recv_x:
            raise SimulationError(
                f"P{mown[t]} multiplied with x[{mcols[t]}] it neither owns nor received"
            )
        xs[t] = recv_x[key]
    np.add.at(y, mrows, mvals * xs)
    # Fold in received partials (one add per received word).
    for d, items in recv_partial_rows.items():
        for i, v in items:
            if p.vectors.y_part[i] != d:
                raise SimulationError(f"partial for y[{i}] delivered to non-owner P{d}")
            y[i] += v
            flops_main[d] += 1

    ref = m @ x
    if not np.allclose(y, ref, rtol=1e-10, atol=1e-12):
        raise SimulationError("single-phase SpMV result differs from serial A @ x")

    return SpMVRun(
        y=y,
        ledger=ledger,
        phases=[
            PhaseCost("precompute", flops=flops_pre),
            PhaseCost(PHASE, comm_phase=PHASE),
            PhaseCost("compute", flops=flops_main),
        ],
        nnz=int(m.nnz),
        kind=p.kind,
    )
