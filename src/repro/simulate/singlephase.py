"""The paper's modified parallel SpMV (Section III) — single comm phase.

Phases executed per processor ``P_k``:

1. **Precompute** — for every owned nonzero whose ``x_j`` is local but
   ``y_i`` is not (group ii), accumulate the partial ``ȳ_i``.
2. **Expand-and-Fold** — send to each ``P_ℓ`` one fused packet
   ``[x̂^{(k)}_ℓ, ŷ^{(ℓ)}_k]``: the x entries ``P_ℓ`` needs and the
   partials computed for ``P_ℓ``'s rows.
3. **Compute** — finish ``y^{(k)}`` from the diagonal block, the
   row-side off-diagonal nonzeros (with received x), and the received
   partials.

For a 1D rowwise partition the precompute phase is empty and the fused
packet degenerates to the classic expand — the generalization property
the paper notes.  The executor enforces data locality: a processor only
multiplies with x values it owns or has received, and the assembled
output is verified against the serial product.

Every step is an array kernel (:mod:`repro.kernels`): packet word
counts come from :func:`~repro.kernels.pair_counts`, the locality
audit is a :func:`~repro.kernels.in_sorted` searchsorted join against
the delivered ``(receiver, j)`` key set, and partial folds are
scatter-adds.  The seed implementation is preserved in
:mod:`repro.simulate.legacy`; ledgers are bit-identical.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.kernels import group_sum, pair_counts
from repro.partition.types import SpMVPartition
from repro.simulate import profiling
from repro.simulate.common import (
    check_fold_ownership,
    check_locality,
    classify_nonzeros,
    delivery_keys,
    resolve_x,
)
from repro.simulate.machine import PhaseCost, SpMVRun
from repro.simulate.messages import Ledger

__all__ = ["run_single_phase"]

PHASE = "expand-and-fold"


def run_single_phase(p: SpMVPartition, x: np.ndarray | None = None) -> SpMVRun:
    """Execute the single-phase SpMV under partition ``p``.

    ``p`` must be s2D-admissible (1D rowwise/columnwise partitions are,
    trivially).  Returns the simulated run; ``run.y`` equals ``A @ x``.
    """
    profiling.note_run()
    p.validate_s2d()
    m = p.matrix
    nrows, ncols = m.shape
    k = p.nparts
    x = resolve_x(x, ncols)

    rows, cols = m.row, m.col
    vals = np.asarray(m.data, dtype=np.float64)
    # Group (ii) precompute mask (x local, y non-local) vs the row-owner
    # compute mask; everything else is a classification error.
    rp, cp, owner, pre_mask, main_mask = classify_nonzeros(p)

    ledger = Ledger(k)

    # ---------------- Phase 1: Precompute -----------------------------
    with profiling.stage("precompute"):
        flops_pre = 2 * np.bincount(owner[pre_mask], minlength=k).astype(np.int64)
        # Locality: the x value used here must be owned by the computing proc.
        if not np.all(cp[pre_mask] == owner[pre_mask]):
            raise SimulationError("precompute touched a non-local x entry")
        # Partials ȳ_i accumulated at their producer: key (producer, i).
        # Partials are keyed (producer, row): a dense key range, so the
        # shared kernel's bincount fastpath applies.
        pk = owner[pre_mask].astype(np.int64) * nrows + rows[pre_mask]
        pkeys, psums = group_sum(pk, vals[pre_mask] * x[cols[pre_mask]])
        part_src = pkeys // nrows
        part_row = pkeys % nrows
        part_dst = p.vectors.y_part[part_row]
        if np.any(part_src == part_dst):
            raise SimulationError("a precomputed partial is already local")

    # ---------------- Phase 2: Expand-and-Fold ------------------------
    with profiling.stage("exchange"):
        # x needs: row-side off-diagonal nonzeros read x they do not own.
        # The sender of x_j is its owner — a function of j — so the
        # delivery items deduplicate on the narrower (receiver, j) key,
        # which doubles as the sorted join table of the locality audit.
        need_mask = main_mask & (cp != rp)
        recv_keys = delivery_keys(rp[need_mask], cols[need_mask], ncols)
        x_dst = recv_keys // ncols
        x_j = recv_keys % ncols
        x_src = p.vectors.x_part[x_j]

        # One fused packet per communicating pair: one word per x entry
        # and per partial.
        ledger.record_pairs(
            PHASE,
            *pair_counts(
                np.concatenate((x_src, part_src)),
                np.concatenate((x_dst, part_dst)),
                k,
            ),
        )

    # ---------------- Phase 3: Compute --------------------------------
    with profiling.stage("compute"):
        flops_main = 2 * np.bincount(owner[main_mask], minlength=k).astype(np.int64)
        mrows = rows[main_mask]
        mcols = cols[main_mask]
        mvals = vals[main_mask]
        mown = owner[main_mask]
        # Locality audit: every non-local x read must match a delivered
        # (receiver, j) key from the exchange.
        nonlocal_mask = cp[main_mask] != mown
        check_locality(recv_keys, mown[nonlocal_mask], mcols[nonlocal_mask], ncols)
        y = np.bincount(mrows, weights=mvals * x[mcols], minlength=nrows)
        # Fold in received partials (one add per received word), only at
        # the row owner each was delivered to.
        check_fold_ownership(p.vectors.y_part, part_row, part_dst)
        if part_row.size:
            y += np.bincount(part_row, weights=psums, minlength=nrows)
            flops_main += np.bincount(part_dst, minlength=k).astype(np.int64)

    with profiling.stage("verify"):
        ref = m @ x
        if not np.allclose(y, ref, rtol=1e-10, atol=1e-12):
            raise SimulationError(
                "single-phase SpMV result differs from serial A @ x"
            )

    return SpMVRun(
        y=y,
        ledger=ledger,
        phases=[
            PhaseCost("precompute", flops=flops_pre),
            PhaseCost(PHASE, comm_phase=PHASE),
            PhaseCost("compute", flops=flops_main),
        ],
        nnz=int(m.nnz),
        kind=p.kind,
    )
