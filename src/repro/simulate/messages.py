"""Message ledger: every send of the simulated SpMV, by phase.

The ledger is the simulator's ground truth for the quantities the
paper's tables report (total volume, per-processor message counts).
The analytic formulas in :mod:`repro.core.volume` are tested against
these observations.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError

__all__ = ["Ledger"]


class Ledger:
    """Per-phase record of ``(src, dst) → words`` sends."""

    def __init__(self, nparts: int):
        if nparts <= 0:
            raise SimulationError("nparts must be positive")
        self.nparts = int(nparts)
        self._phases: dict[str, dict[tuple[int, int], int]] = {}
        self._order: list[str] = []
        # Per-phase (sent_v, recv_v, sent_m, recv_m) aggregates, computed
        # lazily and invalidated whenever the phase's book changes.
        self._agg: dict[str, tuple] = {}

    # ------------------------------------------------------------------

    def record(self, phase: str, src: int, dst: int, words: int) -> None:
        """Record one message.  Zero-word sends are rejected: the
        executors must not emit empty messages (the paper's message
        counts assume none)."""
        if words <= 0:
            raise SimulationError(f"empty message {src}->{dst} in phase {phase!r}")
        if src == dst:
            raise SimulationError(f"self-message at P{src} in phase {phase!r}")
        if not (0 <= src < self.nparts and 0 <= dst < self.nparts):
            raise SimulationError(f"message {src}->{dst} outside 0..{self.nparts - 1}")
        if phase not in self._phases:
            self._phases[phase] = {}
            self._order.append(phase)
        book = self._phases[phase]
        if (src, dst) in book:
            raise SimulationError(
                f"duplicate message {src}->{dst} in phase {phase!r}; "
                "executors must aggregate into one packet per pair per phase"
            )
        book[(src, dst)] = int(words)
        self._agg.pop(phase, None)

    def record_pairs(
        self,
        phase: str,
        src: np.ndarray,
        dst: np.ndarray,
        words: np.ndarray,
    ) -> None:
        """Bulk-record one message per ``(src[i], dst[i])`` pair.

        The vectorized counterpart of :meth:`record`: all validation
        (positive words, no self-messages, range, no duplicate pairs —
        within the batch or against messages already booked) runs as
        array operations, and the resulting book is identical to
        recording each pair individually.  An empty batch is a no-op
        and does not open the phase.
        """
        src = np.asarray(src, dtype=np.int64).ravel()
        dst = np.asarray(dst, dtype=np.int64).ravel()
        words = np.asarray(words, dtype=np.int64).ravel()
        if not (src.size == dst.size == words.size):
            raise SimulationError("record_pairs arrays must have equal sizes")
        if src.size == 0:
            return
        bad = np.flatnonzero(words <= 0)
        if bad.size:
            t = bad[0]
            raise SimulationError(
                f"empty message {src[t]}->{dst[t]} in phase {phase!r}"
            )
        bad = np.flatnonzero(src == dst)
        if bad.size:
            raise SimulationError(f"self-message at P{src[bad[0]]} in phase {phase!r}")
        if min(src.min(), dst.min()) < 0 or max(src.max(), dst.max()) >= self.nparts:
            sel = (src < 0) | (src >= self.nparts) | (dst < 0) | (dst >= self.nparts)
            t = np.flatnonzero(sel)[0]
            raise SimulationError(
                f"message {src[t]}->{dst[t]} outside 0..{self.nparts - 1}"
            )
        keys = src * np.int64(self.nparts) + dst
        sorted_keys = np.sort(keys)
        if sorted_keys.size > 1 and np.any(np.diff(sorted_keys) == 0):
            dup = sorted_keys[np.flatnonzero(np.diff(sorted_keys) == 0)[0]]
            raise SimulationError(
                f"duplicate message {dup // self.nparts}->{dup % self.nparts} "
                f"in phase {phase!r}; executors must aggregate into one packet "
                "per pair per phase"
            )
        book = self._phases.get(phase)
        if book is None:
            self._phases[phase] = book = {}
            self._order.append(phase)
        elif book:
            existing = np.fromiter(
                (s * self.nparts + d for s, d in book), dtype=np.int64, count=len(book)
            )
            clash = np.flatnonzero(np.isin(keys, existing))
            if clash.size:
                t = clash[0]
                raise SimulationError(
                    f"duplicate message {src[t]}->{dst[t]} in phase {phase!r}; "
                    "executors must aggregate into one packet per pair per phase"
                )
        book.update(zip(zip(src.tolist(), dst.tolist()), words.tolist()))
        self._agg.pop(phase, None)

    # ------------------------------------------------------------------

    @property
    def phase_names(self) -> list[str]:
        return list(self._order)

    def phase_pairs(self, phase: str) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """One phase's book as ``(src, dst, words)`` arrays, sorted by pair.

        The round-trip partner of :meth:`record_pairs`: replaying the
        returned arrays into a fresh ledger rebuilds the phase exactly.
        An unknown phase yields empty arrays.
        """
        book = self._phases.get(phase, {})
        if not book:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy(), empty.copy()
        pairs = np.array(sorted(book), dtype=np.int64)
        words = np.array([book[(s, d)] for s, d in map(tuple, pairs)], dtype=np.int64)
        return pairs[:, 0], pairs[:, 1], words

    def _arrays(self, phase: str) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        cached = self._agg.get(phase)
        if cached is not None:
            return cached
        sent_v = np.zeros(self.nparts, dtype=np.int64)
        recv_v = np.zeros(self.nparts, dtype=np.int64)
        sent_m = np.zeros(self.nparts, dtype=np.int64)
        recv_m = np.zeros(self.nparts, dtype=np.int64)
        book = self._phases.get(phase, {})
        if book:
            pairs = np.array(list(book.keys()), dtype=np.int64)
            w = np.fromiter(book.values(), dtype=np.int64, count=len(book))
            src, dst = pairs[:, 0], pairs[:, 1]
            np.add.at(sent_v, src, w)
            np.add.at(recv_v, dst, w)
            np.add.at(sent_m, src, 1)
            np.add.at(recv_m, dst, 1)
        arrays = (sent_v, recv_v, sent_m, recv_m)
        self._agg[phase] = arrays
        return arrays

    def as_dict(self) -> dict[str, dict[str, int]]:
        """JSON-friendly snapshot: ``{phase: {"src->dst": words}}``.

        Pairs are listed in sorted order, so two ledgers with the same
        messages snapshot identically regardless of recording order —
        the golden tests and the benchmark compare executors with this.
        """
        return {
            phase: {
                f"{s}->{d}": w for (s, d), w in sorted(self._phases[phase].items())
            }
            for phase in self._order
        }

    def sent_volume(self, phase: str | None = None) -> np.ndarray:
        """Words sent per processor (one phase, or all phases summed)."""
        if phase is not None:
            return self._arrays(phase)[0].copy()
        total = np.zeros(self.nparts, dtype=np.int64)
        for name in self._order:
            total += self._arrays(name)[0]
        return total

    def recv_volume(self, phase: str | None = None) -> np.ndarray:
        if phase is not None:
            return self._arrays(phase)[1].copy()
        total = np.zeros(self.nparts, dtype=np.int64)
        for name in self._order:
            total += self._arrays(name)[1]
        return total

    def sent_msgs(self, phase: str | None = None) -> np.ndarray:
        if phase is not None:
            return self._arrays(phase)[2].copy()
        total = np.zeros(self.nparts, dtype=np.int64)
        for name in self._order:
            total += self._arrays(name)[2]
        return total

    def recv_msgs(self, phase: str | None = None) -> np.ndarray:
        if phase is not None:
            return self._arrays(phase)[3].copy()
        total = np.zeros(self.nparts, dtype=np.int64)
        for name in self._order:
            total += self._arrays(name)[3]
        return total

    def total_volume(self) -> int:
        """All words sent over all phases."""
        return int(self.sent_volume().sum())

    def total_msgs(self) -> int:
        return int(self.sent_msgs().sum())

    def pair_volume(self, phase: str, src: int, dst: int) -> int:
        """Words of one specific message (0 if absent)."""
        return int(self._phases.get(phase, {}).get((src, dst), 0))
