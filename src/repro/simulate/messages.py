"""Message ledger: every send of the simulated SpMV, by phase.

The ledger is the simulator's ground truth for the quantities the
paper's tables report (total volume, per-processor message counts).
The analytic formulas in :mod:`repro.core.volume` are tested against
these observations.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError

__all__ = ["Ledger"]


class Ledger:
    """Per-phase record of ``(src, dst) → words`` sends."""

    def __init__(self, nparts: int):
        if nparts <= 0:
            raise SimulationError("nparts must be positive")
        self.nparts = int(nparts)
        self._phases: dict[str, dict[tuple[int, int], int]] = {}
        self._order: list[str] = []

    # ------------------------------------------------------------------

    def record(self, phase: str, src: int, dst: int, words: int) -> None:
        """Record one message.  Zero-word sends are rejected: the
        executors must not emit empty messages (the paper's message
        counts assume none)."""
        if words <= 0:
            raise SimulationError(f"empty message {src}->{dst} in phase {phase!r}")
        if src == dst:
            raise SimulationError(f"self-message at P{src} in phase {phase!r}")
        if not (0 <= src < self.nparts and 0 <= dst < self.nparts):
            raise SimulationError(f"message {src}->{dst} outside 0..{self.nparts - 1}")
        if phase not in self._phases:
            self._phases[phase] = {}
            self._order.append(phase)
        book = self._phases[phase]
        if (src, dst) in book:
            raise SimulationError(
                f"duplicate message {src}->{dst} in phase {phase!r}; "
                "executors must aggregate into one packet per pair per phase"
            )
        book[(src, dst)] = int(words)

    # ------------------------------------------------------------------

    @property
    def phase_names(self) -> list[str]:
        return list(self._order)

    def _arrays(self, phase: str) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        sent_v = np.zeros(self.nparts, dtype=np.int64)
        recv_v = np.zeros(self.nparts, dtype=np.int64)
        sent_m = np.zeros(self.nparts, dtype=np.int64)
        recv_m = np.zeros(self.nparts, dtype=np.int64)
        for (src, dst), words in self._phases.get(phase, {}).items():
            sent_v[src] += words
            recv_v[dst] += words
            sent_m[src] += 1
            recv_m[dst] += 1
        return sent_v, recv_v, sent_m, recv_m

    def sent_volume(self, phase: str | None = None) -> np.ndarray:
        """Words sent per processor (one phase, or all phases summed)."""
        if phase is not None:
            return self._arrays(phase)[0]
        total = np.zeros(self.nparts, dtype=np.int64)
        for name in self._order:
            total += self._arrays(name)[0]
        return total

    def recv_volume(self, phase: str | None = None) -> np.ndarray:
        if phase is not None:
            return self._arrays(phase)[1]
        total = np.zeros(self.nparts, dtype=np.int64)
        for name in self._order:
            total += self._arrays(name)[1]
        return total

    def sent_msgs(self, phase: str | None = None) -> np.ndarray:
        if phase is not None:
            return self._arrays(phase)[2]
        total = np.zeros(self.nparts, dtype=np.int64)
        for name in self._order:
            total += self._arrays(name)[2]
        return total

    def recv_msgs(self, phase: str | None = None) -> np.ndarray:
        if phase is not None:
            return self._arrays(phase)[3]
        total = np.zeros(self.nparts, dtype=np.int64)
        for name in self._order:
            total += self._arrays(name)[3]
        return total

    def total_volume(self) -> int:
        """All words sent over all phases."""
        return int(self.sent_volume().sum())

    def total_msgs(self) -> int:
        return int(self.sent_msgs().sum())

    def pair_volume(self, phase: str, src: int, dst: int) -> int:
        """Words of one specific message (0 if absent)."""
        return int(self._phases.get(phase, {}).get((src, dst), 0))
