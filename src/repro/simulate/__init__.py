"""Distributed-memory SpMV simulator.

The paper times real MPI runs on a Cray XE6; this package substitutes a
deterministic simulator that *executes* each parallel SpMV algorithm —
every processor computes only with data it owns or has received, and
every message is recorded in a ledger — then prices the run with a
BSP-style α/β/γ machine model.  The simulated ``y`` is checked against
the serial ``A @ x``, so the executors are functional models of the
algorithms, not formulas.

- :mod:`repro.simulate.messages` — the message ledger;
- :mod:`repro.simulate.machine` — the cost model and speedup estimate;
- :mod:`repro.simulate.singlephase` — the paper's modified SpMV
  (Precompute / Expand-and-Fold / Compute) for s2D and 1D partitions;
- :mod:`repro.simulate.twophase` — the standard expand/fold SpMV for
  2D partitions (also runs 2D-b and 1D-b, whose bounded patterns come
  from their vector placement);
- :mod:`repro.simulate.bounded` — the mesh-routed fused exchange of
  s2D-b;
- :mod:`repro.simulate.report` — one-call evaluation producing the
  numbers the paper's tables report;
- :mod:`repro.simulate.profiling` — ambient per-phase wall-clock
  timing of the executors (CLI ``simulate --profile``);
- :mod:`repro.simulate.legacy` — the seed executors, frozen as the
  golden baseline for the vectorized ones (bit-identical ledgers).
"""

from repro.simulate.bounded import run_s2d_bounded
from repro.simulate.legacy import (
    legacy_run_s2d_bounded,
    legacy_run_single_phase,
    legacy_run_two_phase,
)
from repro.simulate.machine import MachineModel, SpMVRun
from repro.simulate.messages import Ledger
from repro.simulate.profiling import SimulateProfile
from repro.simulate.report import PartitionQuality, evaluate
from repro.simulate.singlephase import run_single_phase
from repro.simulate.twophase import run_two_phase

__all__ = [
    "Ledger",
    "MachineModel",
    "SimulateProfile",
    "SpMVRun",
    "run_single_phase",
    "run_two_phase",
    "run_s2d_bounded",
    "legacy_run_single_phase",
    "legacy_run_two_phase",
    "legacy_run_s2d_bounded",
    "evaluate",
    "PartitionQuality",
]
