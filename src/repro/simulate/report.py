"""One-call evaluation of a partition: the numbers the paper tabulates.

:func:`run_partition` picks the right executor for the partition kind
and runs the simulated SpMV; :func:`summarize` prices a finished run
under a machine model, producing load imbalance (LI%), total volume,
average/maximum messages per processor, and the model speedup — the
exact column set of Tables II through VII.  :func:`evaluate` composes
the two; the :class:`repro.engine.PartitionEngine` calls them
separately so one cached run can be re-priced under many machine
models.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SimulationError
from repro.partition.types import SpMVPartition
from repro.simulate.bounded import run_s2d_bounded
from repro.simulate.machine import MachineModel, SpMVRun
from repro.simulate.singlephase import run_single_phase
from repro.simulate.twophase import run_two_phase

__all__ = ["PartitionQuality", "evaluate", "run_partition", "summarize", "EXECUTORS"]

# Partition kind → executor choice.  The single-phase executor covers
# everything s2D-admissible (the paper's point: 1D is a special case);
# the two-phase executor covers the unconstrained 2D family.
EXECUTORS = {
    "1D": "single",
    "1D-col": "single",
    "s2D": "single",
    "s2D-mg": "single",
    "2D": "two",
    "2D-orb": "two",
    "2D-b": "two",
    "1D-b": "two",
    "s2D-b": "routed",
}


@dataclass(frozen=True)
class PartitionQuality:
    """Table-row summary of one partitioning instance."""

    kind: str
    nparts: int
    load_imbalance: float
    total_volume: int
    avg_msgs: float
    max_msgs: int
    speedup: float
    time: float
    run: SpMVRun = field(repr=False, compare=False)

    @property
    def li_percent(self) -> float:
        """LI% as printed in the paper (x* rows mean 100x%)."""
        return 100.0 * self.load_imbalance

    def format_li(self) -> str:
        """Paper-style LI rendering: '12.9%' or '1.2*' (= 120%)."""
        if self.load_imbalance >= 1.0:
            return f"{self.load_imbalance:.1f}*"
        return f"{self.li_percent:.1f}%"


def run_partition(p: SpMVPartition, x: np.ndarray | None = None) -> SpMVRun:
    """Execute the simulated SpMV with the executor matching ``p.kind``."""
    mode = EXECUTORS.get(p.kind)
    if mode is None:
        mode = "single" if p.is_s2d_admissible() else "two"
    if mode == "single":
        return run_single_phase(p, x)
    if mode == "routed":
        return run_s2d_bounded(p, x)
    if mode == "two":
        return run_two_phase(p, x)
    raise SimulationError(f"unknown executor mode {mode!r}")  # pragma: no cover


def summarize(
    p: SpMVPartition, run: SpMVRun, machine: MachineModel | None = None
) -> PartitionQuality:
    """Price a finished run under ``machine`` and tabulate its quality."""
    machine = machine or MachineModel()
    sent = run.ledger.sent_msgs()
    return PartitionQuality(
        kind=p.kind,
        nparts=p.nparts,
        load_imbalance=p.load_imbalance(),
        total_volume=run.ledger.total_volume(),
        avg_msgs=float(sent.mean()),
        max_msgs=int(sent.max(initial=0)),
        speedup=run.speedup(machine),
        time=run.time(machine),
        run=run,
    )


def evaluate(
    p: SpMVPartition,
    x: np.ndarray | None = None,
    machine: MachineModel | None = None,
) -> PartitionQuality:
    """Run the right SpMV executor on ``p`` and summarise its quality."""
    return summarize(p, run_partition(p, x), machine)
