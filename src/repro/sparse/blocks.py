"""Block structure induced on a matrix by input/output vector partitions.

Given a K-way partition of the input vector ``x`` (one part id per
column) and of the output vector ``y`` (one part id per row), the
nonzeros of ``A`` fall into a K×K logical block structure

    A_{ℓk} = { a_ij : y_i ∈ y^{(ℓ)}, x_j ∈ x^{(k)} }

(Section III of the paper).  Everything the s2D machinery needs —
which off-diagonal blocks are nonempty, the number of nonempty rows
``m̂`` and columns ``n̂`` of each block, the nonzero membership of each
block — is computed here once, vectorised, and reused.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import PartitionError
from repro.sparse.coo import coo_triplets

__all__ = ["BlockStructure"]


@dataclass
class BlockStructure:
    """The K×K block view of a sparse matrix under a vector partition.

    Parameters
    ----------
    rows, cols:
        Canonical COO triplet coordinates of the matrix (values are not
        needed for structural analysis).
    x_part:
        ``x_part[j]`` is the processor owning input entry ``x_j``
        (length ``n``).
    y_part:
        ``y_part[i]`` is the processor owning output entry ``y_i``
        (length ``m``).
    nparts:
        The number of processors K.

    Attributes
    ----------
    row_part_of_nnz, col_part_of_nnz:
        Per-nonzero owner of the row side (``π(y_i)``) and the column
        side (``π(x_j)``).
    """

    rows: np.ndarray
    cols: np.ndarray
    x_part: np.ndarray
    y_part: np.ndarray
    nparts: int
    row_part_of_nnz: np.ndarray = field(init=False)
    col_part_of_nnz: np.ndarray = field(init=False)
    _order: np.ndarray = field(init=False, repr=False)
    _block_ids_sorted: np.ndarray = field(init=False, repr=False)
    _block_starts: dict = field(init=False, repr=False)

    @classmethod
    def from_matrix(cls, a, x_part, y_part, nparts: int) -> "BlockStructure":
        """Build the block structure of matrix ``a`` (any scipy-sparse-able)."""
        rows, cols, _ = coo_triplets(a)
        return cls(rows, cols, np.asarray(x_part), np.asarray(y_part), nparts)

    def __post_init__(self) -> None:
        self.rows = np.asarray(self.rows, dtype=np.int64)
        self.cols = np.asarray(self.cols, dtype=np.int64)
        self.x_part = np.asarray(self.x_part, dtype=np.int64)
        self.y_part = np.asarray(self.y_part, dtype=np.int64)
        k = self.nparts
        if k <= 0:
            raise PartitionError(f"nparts must be positive, got {k}")
        for name, arr in (("x_part", self.x_part), ("y_part", self.y_part)):
            if arr.size and (arr.min() < 0 or arr.max() >= k):
                raise PartitionError(f"{name} contains part ids outside [0, {k})")
        if self.rows.size:
            if self.rows.max() >= self.y_part.size:
                raise PartitionError("row index exceeds y_part length")
            if self.cols.max() >= self.x_part.size:
                raise PartitionError("col index exceeds x_part length")
        self.row_part_of_nnz = self.y_part[self.rows]
        self.col_part_of_nnz = self.x_part[self.cols]
        block_ids = self.row_part_of_nnz * k + self.col_part_of_nnz
        self._order = np.argsort(block_ids, kind="stable")
        self._block_ids_sorted = block_ids[self._order]
        uniq, starts = np.unique(self._block_ids_sorted, return_index=True)
        ends = np.append(starts[1:], self._block_ids_sorted.size)
        self._block_starts = {
            int(b): (int(s), int(e)) for b, s, e in zip(uniq, starts, ends)
        }

    # ------------------------------------------------------------------
    # Block membership
    # ------------------------------------------------------------------

    @property
    def nnz(self) -> int:
        """Total number of nonzeros."""
        return int(self.rows.size)

    def block_nnz_indices(self, row_block: int, col_block: int) -> np.ndarray:
        """Indices (into the canonical triplet arrays) of nonzeros in block
        ``A_{row_block, col_block}``.  Empty array if the block is empty."""
        key = row_block * self.nparts + col_block
        span = self._block_starts.get(key)
        if span is None:
            return np.empty(0, dtype=np.int64)
        s, e = span
        return self._order[s:e]

    def nonempty_offdiagonal_blocks(self) -> list[tuple[int, int]]:
        """All ``(ℓ, k)`` with ``ℓ != k`` and ``A_{ℓk}`` nonempty.

        These are exactly the processor pairs that exchange a message in
        the single-phase s2D SpMV (and in 1D rowwise SpMV with the same
        vector partition) — first observation of Section III.
        """
        k = self.nparts
        out = []
        for key in self._block_starts:
            ell, kk = divmod(key, k)
            if ell != kk:
                out.append((ell, kk))
        return out

    def block_nnz_count(self, row_block: int, col_block: int) -> int:
        """Number of nonzeros of block ``A_{row_block, col_block}``."""
        return int(self.block_nnz_indices(row_block, col_block).size)

    # ------------------------------------------------------------------
    # n̂ / m̂ statistics (eq. 3 ingredients)
    # ------------------------------------------------------------------

    def block_nonempty_cols(self, row_block: int, col_block: int) -> np.ndarray:
        """Distinct column indices with a nonzero in the block (``n̂`` set)."""
        idx = self.block_nnz_indices(row_block, col_block)
        return np.unique(self.cols[idx])

    def block_nonempty_rows(self, row_block: int, col_block: int) -> np.ndarray:
        """Distinct row indices with a nonzero in the block (``m̂`` set)."""
        idx = self.block_nnz_indices(row_block, col_block)
        return np.unique(self.rows[idx])

    def nhat(self, row_block: int, col_block: int) -> int:
        """``n̂(A_{ℓk})``: number of nonempty columns of the block."""
        return int(self.block_nonempty_cols(row_block, col_block).size)

    def mhat(self, row_block: int, col_block: int) -> int:
        """``m̂(A_{ℓk})``: number of nonempty rows of the block."""
        return int(self.block_nonempty_rows(row_block, col_block).size)

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------

    def rowwise_volume(self) -> int:
        """Total communication volume of the pure 1D rowwise partition.

        With every off-diagonal block kept on its row side (alternative
        A1 for all blocks), processor ``P_k`` sends ``x_j`` to ``P_ℓ``
        for every nonempty column of ``A_{ℓk}``; the total volume is
        ``Σ_{ℓ≠k} n̂(A_{ℓk})``.
        """
        total = 0
        for ell, kk in self.nonempty_offdiagonal_blocks():
            total += self.nhat(ell, kk)
        return total

    def diagonal_loads(self) -> np.ndarray:
        """Per-processor nonzero counts of the diagonal blocks ``A_kk``."""
        loads = np.zeros(self.nparts, dtype=np.int64)
        mask = self.row_part_of_nnz == self.col_part_of_nnz
        np.add.at(loads, self.row_part_of_nnz[mask], 1)
        return loads

    def rowwise_loads(self) -> np.ndarray:
        """Per-processor nonzero counts under pure 1D rowwise assignment
        (every nonzero to its row owner): ``W_k = |A_{k*}|``."""
        loads = np.zeros(self.nparts, dtype=np.int64)
        np.add.at(loads, self.row_part_of_nnz, 1)
        return loads

    def columnwise_loads(self) -> np.ndarray:
        """Per-processor nonzero counts under pure 1D columnwise assignment."""
        loads = np.zeros(self.nparts, dtype=np.int64)
        np.add.at(loads, self.col_part_of_nnz, 1)
        return loads
