"""Block structure induced on a matrix by input/output vector partitions.

Given a K-way partition of the input vector ``x`` (one part id per
column) and of the output vector ``y`` (one part id per row), the
nonzeros of ``A`` fall into a K×K logical block structure

    A_{ℓk} = { a_ij : y_i ∈ y^{(ℓ)}, x_j ∈ x^{(k)} }

(Section III of the paper).  Everything the s2D machinery needs —
which off-diagonal blocks are nonempty, the number of nonempty rows
``m̂`` and columns ``n̂`` of each block, the nonzero membership of each
block — is computed here once, vectorised, and reused.

Two access styles coexist:

- the **batched kernel**: :meth:`BlockStructure.block_stats` computes
  nnz, ``n̂`` and ``m̂`` for *every* nonempty block in one sort-based
  pass (:class:`BlockStats`); this is the hot path every higher layer
  (s2D, DM batching, volume bookkeeping, the engine) builds on;
- the **per-block accessors** (``block_nnz_indices``, ``nhat`` …):
  convenience views over the same pre-sorted buffers, kept for tests
  and exploratory use.  :func:`legacy_block_stats` preserves the
  original one-``np.unique``-per-block computation as the golden
  reference the batched kernel is pinned against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.errors import PartitionError
from repro.kernels import grouped_distinct_counts
from repro.sparse.coo import coo_triplets

__all__ = [
    "BlockStructure",
    "BlockStats",
    "grouped_distinct_counts",  # re-exported from repro.kernels
    "legacy_block_stats",
]


def _key_position(keys: np.ndarray, nparts: int, row_block: int, col_block: int) -> int:
    """Position of block ``(ℓ, k)`` in a sorted block-key array, or −1."""
    key = row_block * nparts + col_block
    pos = int(np.searchsorted(keys, key))
    if pos < keys.size and keys[pos] == key:
        return pos
    return -1


@dataclass(frozen=True)
class BlockStats:
    """Batched per-block statistics of a K×K block structure.

    Arrays are aligned: entry ``i`` describes the block with key
    ``keys[i] = ℓ·K + k``.  Only nonempty blocks appear, sorted by key
    (row-block major).  ``indptr`` spans index the *block-sorted*
    nonzero order of the owning :class:`BlockStructure`.
    """

    nparts: int
    keys: np.ndarray
    indptr: np.ndarray
    nnz: np.ndarray
    nhat: np.ndarray
    mhat: np.ndarray

    @property
    def nblocks(self) -> int:
        """Number of nonempty blocks."""
        return int(self.keys.size)

    @property
    def row_blocks(self) -> np.ndarray:
        """Row-block index ``ℓ`` of each nonempty block."""
        return self.keys // self.nparts

    @property
    def col_blocks(self) -> np.ndarray:
        """Column-block index ``k`` of each nonempty block."""
        return self.keys % self.nparts

    @property
    def offdiagonal_mask(self) -> np.ndarray:
        """Boolean mask over the nonempty blocks selecting ``ℓ ≠ k``."""
        return self.row_blocks != self.col_blocks

    def index_of(self, row_block: int, col_block: int) -> int:
        """Position of block ``(ℓ, k)`` in the stats arrays, or −1."""
        return _key_position(self.keys, self.nparts, row_block, col_block)

    def _field_of(self, arr: np.ndarray, row_block: int, col_block: int) -> int:
        pos = self.index_of(row_block, col_block)
        return int(arr[pos]) if pos >= 0 else 0

    def nnz_of(self, row_block: int, col_block: int) -> int:
        return self._field_of(self.nnz, row_block, col_block)

    def nhat_of(self, row_block: int, col_block: int) -> int:
        return self._field_of(self.nhat, row_block, col_block)

    def mhat_of(self, row_block: int, col_block: int) -> int:
        return self._field_of(self.mhat, row_block, col_block)


@dataclass
class BlockStructure:
    """The K×K block view of a sparse matrix under a vector partition.

    Parameters
    ----------
    rows, cols:
        Canonical COO triplet coordinates of the matrix (values are not
        needed for structural analysis).
    x_part:
        ``x_part[j]`` is the processor owning input entry ``x_j``
        (length ``n``).
    y_part:
        ``y_part[i]`` is the processor owning output entry ``y_i``
        (length ``m``).
    nparts:
        The number of processors K.

    Attributes
    ----------
    row_part_of_nnz, col_part_of_nnz:
        Per-nonzero owner of the row side (``π(y_i)``) and the column
        side (``π(x_j)``).
    order:
        Stable permutation sorting the triplets by block key
        ``ℓ·K + k``; every batched kernel slices this one buffer.
    block_keys, block_indptr:
        CSR-style span table over ``order``: the nonzeros of the block
        with key ``block_keys[i]`` occupy
        ``order[block_indptr[i]:block_indptr[i+1]]``.
    """

    rows: np.ndarray
    cols: np.ndarray
    x_part: np.ndarray
    y_part: np.ndarray
    nparts: int
    row_part_of_nnz: np.ndarray = field(init=False)
    col_part_of_nnz: np.ndarray = field(init=False)
    order: np.ndarray = field(init=False, repr=False)
    block_keys: np.ndarray = field(init=False, repr=False)
    block_indptr: np.ndarray = field(init=False, repr=False)
    _block_ids_sorted: np.ndarray = field(init=False, repr=False)
    _stats: BlockStats | None = field(init=False, repr=False, default=None)

    @classmethod
    def from_matrix(cls, a, x_part, y_part, nparts: int) -> "BlockStructure":
        """Build the block structure of matrix ``a`` (any scipy-sparse-able)."""
        rows, cols, _ = coo_triplets(a)
        return cls(rows, cols, np.asarray(x_part), np.asarray(y_part), nparts)

    def __post_init__(self) -> None:
        self.rows = np.asarray(self.rows, dtype=np.int64)
        self.cols = np.asarray(self.cols, dtype=np.int64)
        self.x_part = np.asarray(self.x_part, dtype=np.int64)
        self.y_part = np.asarray(self.y_part, dtype=np.int64)
        k = self.nparts
        if k <= 0:
            raise PartitionError(f"nparts must be positive, got {k}")
        for name, arr in (("x_part", self.x_part), ("y_part", self.y_part)):
            if arr.size and (arr.min() < 0 or arr.max() >= k):
                raise PartitionError(f"{name} contains part ids outside [0, {k})")
        if self.rows.size:
            if self.rows.max() >= self.y_part.size:
                raise PartitionError("row index exceeds y_part length")
            if self.cols.max() >= self.x_part.size:
                raise PartitionError("col index exceeds x_part length")
        self.row_part_of_nnz = self.y_part[self.rows]
        self.col_part_of_nnz = self.x_part[self.cols]
        block_ids = self.row_part_of_nnz * k + self.col_part_of_nnz
        self.order = np.argsort(block_ids, kind="stable")
        self._block_ids_sorted = block_ids[self.order]
        self.block_keys, starts = np.unique(self._block_ids_sorted, return_index=True)
        self.block_indptr = np.append(starts, self._block_ids_sorted.size).astype(
            np.int64
        )
        self._stats = None

    # ------------------------------------------------------------------
    # Block membership
    # ------------------------------------------------------------------

    @property
    def nnz(self) -> int:
        """Total number of nonzeros."""
        return int(self.rows.size)

    @property
    def nrows(self) -> int:
        """Number of matrix rows (= length of ``y_part``)."""
        return int(self.y_part.size)

    @property
    def ncols(self) -> int:
        """Number of matrix columns (= length of ``x_part``)."""
        return int(self.x_part.size)

    def _block_pos(self, row_block: int, col_block: int) -> int:
        return _key_position(self.block_keys, self.nparts, row_block, col_block)

    def block_nnz_indices(self, row_block: int, col_block: int) -> np.ndarray:
        """Indices (into the canonical triplet arrays) of nonzeros in block
        ``A_{row_block, col_block}``.  Empty array if the block is empty."""
        pos = self._block_pos(row_block, col_block)
        if pos < 0:
            return np.empty(0, dtype=np.int64)
        return self.order[self.block_indptr[pos] : self.block_indptr[pos + 1]]

    def nonempty_offdiagonal_blocks(self) -> list[tuple[int, int]]:
        """All ``(ℓ, k)`` with ``ℓ != k`` and ``A_{ℓk}`` nonempty.

        These are exactly the processor pairs that exchange a message in
        the single-phase s2D SpMV (and in 1D rowwise SpMV with the same
        vector partition) — first observation of Section III.
        """
        k = self.nparts
        ell = self.block_keys // k
        kk = self.block_keys % k
        off = ell != kk
        return list(zip(ell[off].tolist(), kk[off].tolist()))

    def block_nnz_count(self, row_block: int, col_block: int) -> int:
        """Number of nonzeros of block ``A_{row_block, col_block}``."""
        return int(self.block_nnz_indices(row_block, col_block).size)

    # ------------------------------------------------------------------
    # n̂ / m̂ statistics (eq. 3 ingredients)
    # ------------------------------------------------------------------

    def block_stats(self) -> BlockStats:
        """Batched nnz / ``n̂`` / ``m̂`` of every nonempty block.

        One linear incidence pass over all nonzeros replaces the
        per-block ``np.unique`` calls of the legacy path; the result is
        cached on the structure (it is immutable once built).
        """
        if self._stats is None:
            nnz = np.diff(self.block_indptr)
            nblocks = int(self.block_keys.size)
            # Dense block index per nonzero (blocks are contiguous in the
            # sorted order), then a linear COO→CSR incidence pass per
            # axis: duplicate (block, line) pairs collapse, so the CSR
            # row lengths are exactly the distinct-line counts.  This is
            # bucket placement, not a comparison sort — O(nnz + K²).
            blk = np.repeat(np.arange(nblocks, dtype=np.int64), nnz)
            ones = np.ones(blk.size, dtype=np.int32)
            ncounts = np.diff(
                sp.csr_matrix(
                    (ones, (blk, self.cols[self.order])),
                    shape=(max(nblocks, 1), max(self.ncols, 1)),
                ).indptr
            )[:nblocks]
            mcounts = np.diff(
                sp.csr_matrix(
                    (ones, (blk, self.rows[self.order])),
                    shape=(max(nblocks, 1), max(self.nrows, 1)),
                ).indptr
            )[:nblocks]
            self._stats = BlockStats(
                nparts=self.nparts,
                keys=self.block_keys,
                indptr=self.block_indptr,
                nnz=nnz.astype(np.int64),
                nhat=ncounts.astype(np.int64),
                mhat=mcounts.astype(np.int64),
            )
        return self._stats

    def block_nonempty_cols(self, row_block: int, col_block: int) -> np.ndarray:
        """Distinct column indices with a nonzero in the block (``n̂`` set)."""
        idx = self.block_nnz_indices(row_block, col_block)
        return np.unique(self.cols[idx])

    def block_nonempty_rows(self, row_block: int, col_block: int) -> np.ndarray:
        """Distinct row indices with a nonzero in the block (``m̂`` set)."""
        idx = self.block_nnz_indices(row_block, col_block)
        return np.unique(self.rows[idx])

    def nhat(self, row_block: int, col_block: int) -> int:
        """``n̂(A_{ℓk})``: number of nonempty columns of the block."""
        return self.block_stats().nhat_of(row_block, col_block)

    def mhat(self, row_block: int, col_block: int) -> int:
        """``m̂(A_{ℓk})``: number of nonempty rows of the block."""
        return self.block_stats().mhat_of(row_block, col_block)

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------

    def rowwise_volume(self) -> int:
        """Total communication volume of the pure 1D rowwise partition.

        With every off-diagonal block kept on its row side (alternative
        A1 for all blocks), processor ``P_k`` sends ``x_j`` to ``P_ℓ``
        for every nonempty column of ``A_{ℓk}``; the total volume is
        ``Σ_{ℓ≠k} n̂(A_{ℓk})``.
        """
        st = self.block_stats()
        return int(st.nhat[st.offdiagonal_mask].sum())

    def diagonal_loads(self) -> np.ndarray:
        """Per-processor nonzero counts of the diagonal blocks ``A_kk``."""
        loads = np.zeros(self.nparts, dtype=np.int64)
        mask = self.row_part_of_nnz == self.col_part_of_nnz
        np.add.at(loads, self.row_part_of_nnz[mask], 1)
        return loads

    def rowwise_loads(self) -> np.ndarray:
        """Per-processor nonzero counts under pure 1D rowwise assignment
        (every nonzero to its row owner): ``W_k = |A_{k*}|``."""
        loads = np.zeros(self.nparts, dtype=np.int64)
        np.add.at(loads, self.row_part_of_nnz, 1)
        return loads

    def columnwise_loads(self) -> np.ndarray:
        """Per-processor nonzero counts under pure 1D columnwise assignment."""
        loads = np.zeros(self.nparts, dtype=np.int64)
        np.add.at(loads, self.col_part_of_nnz, 1)
        return loads


def legacy_block_stats(bs: BlockStructure) -> BlockStats:
    """The original per-block computation of :meth:`BlockStructure.block_stats`.

    One ``np.unique`` per block per statistic, exactly as the seed code
    did it.  Kept as the golden reference for the equivalence tests and
    as the baseline of ``benchmarks/bench_engine.py``; never used on a
    hot path.
    """
    nnz, nhat, mhat = [], [], []
    k = bs.nparts
    for key in bs.block_keys.tolist():
        ell, kk = divmod(int(key), k)
        idx = bs.block_nnz_indices(ell, kk)
        nnz.append(idx.size)
        nhat.append(np.unique(bs.cols[idx]).size)
        mhat.append(np.unique(bs.rows[idx]).size)
    return BlockStats(
        nparts=k,
        keys=bs.block_keys.copy(),
        indptr=bs.block_indptr.copy(),
        nnz=np.asarray(nnz, dtype=np.int64),
        nhat=np.asarray(nhat, dtype=np.int64),
        mhat=np.asarray(mhat, dtype=np.int64),
    )
