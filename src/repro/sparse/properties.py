"""Matrix property reports (the paper's Tables I and IV).

The paper characterises each test matrix by its dimension ``n``, nonzero
count ``nnz``, and the average (``davg``) and maximum (``dmax``) number
of nonzeros per row; the dense-row matrices of Table IV are exactly the
ones where ``dmax`` is enormous relative to ``davg``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sparse.coo import canonical_coo, nnz_per_col, nnz_per_row

__all__ = ["MatrixProperties", "matrix_properties"]


@dataclass(frozen=True)
class MatrixProperties:
    """Summary statistics of a sparse matrix, as reported in Tables I/IV."""

    name: str
    nrows: int
    ncols: int
    nnz: int
    davg: float
    dmax: int
    dmax_col: int
    row_skew: float
    """``dmax / davg`` — the skew statistic the paper correlates with the
    s2D volume reduction (trdheim: low skew → 2%; ASIC_680k: high skew →
    96%)."""

    @property
    def n(self) -> int:
        """Paper's ``n`` (matrices there are square; we report rows)."""
        return self.nrows

    def table_row(self) -> str:
        """One row in the style of Table I / Table IV."""
        return (
            f"{self.name:<16} {self.nrows:>9} {self.nnz:>10} "
            f"{self.davg:>7.1f} {self.dmax:>8}"
        )


def matrix_properties(a, name: str = "matrix") -> MatrixProperties:
    """Compute :class:`MatrixProperties` for ``a``."""
    m = canonical_coo(a)
    per_row = nnz_per_row(m)
    per_col = nnz_per_col(m)
    nnz = int(m.nnz)
    nrows, ncols = m.shape
    davg = nnz / nrows if nrows else 0.0
    dmax = int(per_row.max()) if per_row.size else 0
    dmax_col = int(per_col.max()) if per_col.size else 0
    skew = dmax / davg if davg > 0 else 0.0
    return MatrixProperties(
        name=name,
        nrows=int(nrows),
        ncols=int(ncols),
        nnz=nnz,
        davg=float(davg),
        dmax=dmax,
        dmax_col=dmax_col,
        row_skew=float(skew),
    )
