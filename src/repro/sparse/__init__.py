"""Sparse-matrix substrate.

Thin, explicit utilities over :mod:`scipy.sparse` used throughout the
library:

- :mod:`repro.sparse.coo` — canonical COO triplet access and hygiene;
- :mod:`repro.sparse.blocks` — the K×K block structure a vector
  partition induces on a matrix (the central object of the paper's
  Section III);
- :mod:`repro.sparse.properties` — the matrix statistics reported in
  the paper's Tables I and IV;
- :mod:`repro.sparse.io_mm` — MatrixMarket coordinate I/O;
- :mod:`repro.sparse.permute` — permuted / block views for
  visualisation (Figure 1).
"""

from repro.sparse.blocks import BlockStructure
from repro.sparse.coo import canonical_coo, coo_triplets, empty_like_shape
from repro.sparse.io_mm import read_matrix_market, write_matrix_market
from repro.sparse.permute import block_permutation, spy_string
from repro.sparse.properties import MatrixProperties, matrix_properties

__all__ = [
    "BlockStructure",
    "canonical_coo",
    "coo_triplets",
    "empty_like_shape",
    "read_matrix_market",
    "write_matrix_market",
    "block_permutation",
    "spy_string",
    "MatrixProperties",
    "matrix_properties",
]
