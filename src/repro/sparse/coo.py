"""Canonical COO triplet handling.

All partitioning code in this library operates on *triplet arrays*
``(rows, cols, vals)`` in a canonical order (row-major, deduplicated,
no explicit zeros).  Keeping one canonical form means a nonzero's index
in the triplet arrays is a stable identity, which lets nonzero
partitions be plain integer arrays aligned with the triplets.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

__all__ = ["canonical_coo", "coo_triplets", "empty_like_shape", "nnz_per_row", "nnz_per_col"]


def canonical_coo(a) -> sp.coo_matrix:
    """Return ``a`` as a canonical :class:`scipy.sparse.coo_matrix`.

    Canonical means: duplicate entries summed, explicit zeros dropped,
    and triplets sorted row-major (row, then column).  The result is a
    new matrix; the input is never modified.
    """
    m = sp.coo_matrix(a)
    m.sum_duplicates()  # also sorts row-major
    m.eliminate_zeros()
    # eliminate_zeros may leave order intact, but be defensive: re-sort.
    order = np.lexsort((m.col, m.row))
    return sp.coo_matrix((m.data[order], (m.row[order], m.col[order])), shape=m.shape)


def coo_triplets(a) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Return canonical ``(rows, cols, vals)`` triplet arrays for ``a``."""
    m = canonical_coo(a)
    return m.row.astype(np.int64), m.col.astype(np.int64), m.data


def empty_like_shape(a) -> sp.coo_matrix:
    """An all-zero COO matrix with the same shape and dtype as ``a``."""
    m = sp.coo_matrix(a)
    return sp.coo_matrix(m.shape, dtype=m.dtype)


def nnz_per_row(a) -> np.ndarray:
    """Number of stored nonzeros in each row of ``a``."""
    m = canonical_coo(a)
    return np.bincount(m.row, minlength=m.shape[0]).astype(np.int64)


def nnz_per_col(a) -> np.ndarray:
    """Number of stored nonzeros in each column of ``a``."""
    m = canonical_coo(a)
    return np.bincount(m.col, minlength=m.shape[1]).astype(np.int64)
