"""MatrixMarket coordinate-format I/O.

A from-scratch reader/writer for the ``%%MatrixMarket matrix coordinate``
format used by the University of Florida collection the paper draws its
matrices from.  Supports ``real``, ``integer`` and ``pattern`` fields and
the ``general`` / ``symmetric`` symmetry qualifiers (symmetric files are
expanded to full storage, as a partitioner needs the full pattern).
"""

from __future__ import annotations

import io
import os

import numpy as np
import scipy.sparse as sp

from repro.errors import ReproError
from repro.sparse.coo import canonical_coo

__all__ = ["read_matrix_market", "write_matrix_market"]


def read_matrix_market(path_or_file) -> sp.coo_matrix:
    """Read a MatrixMarket coordinate file into a canonical COO matrix."""
    if hasattr(path_or_file, "read"):
        return _read_stream(path_or_file)
    with open(os.fspath(path_or_file), "r", encoding="ascii") as fh:
        return _read_stream(fh)


def _read_stream(fh) -> sp.coo_matrix:
    header = fh.readline()
    if not header.startswith("%%MatrixMarket"):
        raise ReproError("not a MatrixMarket file: missing %%MatrixMarket header")
    tokens = header.strip().split()
    if len(tokens) < 5:
        raise ReproError(f"malformed MatrixMarket header: {header!r}")
    _, obj, fmt, field, symmetry = tokens[:5]
    obj, fmt, field, symmetry = (s.lower() for s in (obj, fmt, field, symmetry))
    if obj != "matrix" or fmt != "coordinate":
        raise ReproError(f"unsupported MatrixMarket object/format: {obj}/{fmt}")
    if field not in ("real", "integer", "pattern"):
        raise ReproError(f"unsupported MatrixMarket field: {field}")
    if symmetry not in ("general", "symmetric"):
        raise ReproError(f"unsupported MatrixMarket symmetry: {symmetry}")

    # Skip comments and blank lines up to the size line.
    line = fh.readline()
    while line and (line.startswith("%") or not line.strip()):
        line = fh.readline()
    if not line:
        raise ReproError("MatrixMarket file ended before the size line")
    parts = line.split()
    if len(parts) != 3:
        raise ReproError(f"malformed size line: {line!r}")
    nrows, ncols, nnz = (int(p) for p in parts)

    rows = np.empty(nnz, dtype=np.int64)
    cols = np.empty(nnz, dtype=np.int64)
    vals = np.ones(nnz, dtype=np.float64)
    count = 0
    for line in fh:
        if not line.strip() or line.startswith("%"):
            continue
        entry = line.split()
        if count >= nnz:
            raise ReproError("more entries than declared in the size line")
        rows[count] = int(entry[0]) - 1
        cols[count] = int(entry[1]) - 1
        if field != "pattern":
            if len(entry) < 3:
                raise ReproError(f"missing value on data line: {line!r}")
            vals[count] = float(entry[2])
        count += 1
    if count != nnz:
        raise ReproError(f"declared {nnz} entries but found {count}")
    if nnz and (rows.min() < 0 or rows.max() >= nrows or cols.min() < 0 or cols.max() >= ncols):
        raise ReproError("entry index outside the declared matrix shape")

    if symmetry == "symmetric":
        off = rows != cols
        mirror_rows, mirror_cols = cols[off], rows[off]
        rows = np.concatenate([rows, mirror_rows])
        cols = np.concatenate([cols, mirror_cols])
        vals = np.concatenate([vals, vals[off]])

    return canonical_coo(sp.coo_matrix((vals, (rows, cols)), shape=(nrows, ncols)))


def write_matrix_market(a, path_or_file, comment: str = "") -> None:
    """Write matrix ``a`` as a general real coordinate MatrixMarket file."""
    m = canonical_coo(a)
    buf = io.StringIO()
    buf.write("%%MatrixMarket matrix coordinate real general\n")
    for line in comment.splitlines():
        buf.write(f"% {line}\n")
    buf.write(f"{m.shape[0]} {m.shape[1]} {m.nnz}\n")
    for i, j, v in zip(m.row, m.col, m.data):
        buf.write(f"{i + 1} {j + 1} {v:.17g}\n")
    text = buf.getvalue()
    if hasattr(path_or_file, "write"):
        path_or_file.write(text)
    else:
        with open(os.fspath(path_or_file), "w", encoding="ascii") as fh:
            fh.write(text)
