"""Permuted / block views of a partitioned matrix (Figure 1 support).

The paper's Figure 1 shows a 10×13 matrix symmetrically permuted so
that rows owned by the same processor (and columns owned by the same
processor) are contiguous, with each nonzero drawn in the colour of the
processor it is assigned to.  :func:`spy_string` renders the same
picture as ASCII, one digit per nonzero giving its owner.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.coo import coo_triplets

__all__ = ["block_permutation", "spy_string"]


def block_permutation(part: np.ndarray) -> np.ndarray:
    """Permutation grouping indices by part id (stable within a part).

    Returns ``perm`` such that ``perm[new_position] = old_index``;
    entries of part 0 come first, then part 1, etc.
    """
    part = np.asarray(part)
    return np.argsort(part, kind="stable")


def spy_string(a, nnz_part: np.ndarray, x_part=None, y_part=None) -> str:
    """ASCII rendering of a partitioned matrix in Figure-1 style.

    Each nonzero is printed as the (1-based) id of its owning
    processor; dots are structural zeros.  If ``x_part``/``y_part`` are
    given, rows and columns are permuted into contiguous part blocks and
    separator markers are placed between blocks.
    """
    rows, cols, _ = coo_triplets(a)
    nnz_part = np.asarray(nnz_part)
    m, n = a.shape

    if y_part is not None:
        rperm = block_permutation(np.asarray(y_part))
        rinv = np.empty(m, dtype=np.int64)
        rinv[rperm] = np.arange(m)
        y_sorted = np.asarray(y_part)[rperm]
    else:
        rinv = np.arange(m)
        y_sorted = None
    if x_part is not None:
        cperm = block_permutation(np.asarray(x_part))
        cinv = np.empty(n, dtype=np.int64)
        cinv[cperm] = np.arange(n)
        x_sorted = np.asarray(x_part)[cperm]
    else:
        cinv = np.arange(n)
        x_sorted = None

    grid = [["." for _ in range(n)] for _ in range(m)]
    for r, c, p in zip(rinv[rows], cinv[cols], nnz_part):
        grid[r][c] = str(int(p) + 1)

    lines = []
    for i, row in enumerate(grid):
        if y_sorted is not None and i > 0 and y_sorted[i] != y_sorted[i - 1]:
            lines.append("-" * (2 * n - 1))
        cells = []
        for j, ch in enumerate(row):
            if x_sorted is not None and j > 0 and x_sorted[j] != x_sorted[j - 1]:
                cells.append("|")
            cells.append(ch)
        lines.append(" ".join(cells))
    return "\n".join(lines)
