"""Legacy setup shim.

The offline reproduction environment lacks the ``wheel`` package, so
``pip install -e .`` must use the classic ``setup.py develop`` path;
all real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
